"""Tests for the Nyx-like and WarpX-like application models."""

import numpy as np
import pytest

from repro.apps import NyxModel, Stage, WarpXModel, generate_profile
from repro.compression import SZCompressor


@pytest.fixture
def nyx():
    return NyxModel(seed=1, partition_shape=(32, 32, 32))


@pytest.fixture
def warpx():
    return WarpXModel(seed=1, partition_shape=(16, 16, 128))


class TestProfiles:
    def test_profile_fits_iteration(self, nyx):
        profile = nyx.iteration_profile(0)
        assert profile.length > 0
        for obs in profile.main_obstacles + profile.background_obstacles:
            assert obs.start >= 0

    def test_obstacles_ordered_disjoint(self, nyx):
        for it in range(5):
            profile = nyx.iteration_profile(it)
            for obstacles in (
                profile.main_obstacles,
                profile.background_obstacles,
            ):
                for a, b in zip(obstacles, obstacles[1:]):
                    assert a.end <= b.start + 1e-9

    def test_consecutive_iterations_similar(self, nyx):
        p0 = nyx.iteration_profile(0)
        p1 = nyx.iteration_profile(1)
        assert p1.length == pytest.approx(p0.length, rel=0.1)
        assert len(p1.main_obstacles) == len(p0.main_obstacles)
        for a, b in zip(p0.main_obstacles, p1.main_obstacles):
            assert b.start == pytest.approx(a.start, abs=0.3 * p0.length)

    def test_deterministic_per_seed(self):
        a = NyxModel(seed=9).iteration_profile(3)
        b = NyxModel(seed=9).iteration_profile(3)
        assert a == b

    def test_main_thread_mostly_idle(self, nyx):
        profile = nyx.iteration_profile(0)
        assert profile.busy_fraction_main() < 0.6

    def test_generate_profile_validation(self, rng):
        with pytest.raises(ValueError):
            generate_profile(1.0, 2, 1.5, 2, 0.2, rng)


class TestStages:
    def test_stage_progression(self, nyx):
        stages = [nyx.stage_of(i, 30) for i in (0, 15, 29)]
        assert stages == [Stage.BEGINNING, Stage.MIDDLE, Stage.END]

    def test_ratio_spread_grows_with_stage(self, nyx):
        spreads = [nyx.max_ratio_difference(s) for s in Stage]
        assert spreads == sorted(spreads)
        assert spreads[-1] == 20.0

    def test_warpx_spread_more_moderate(self, warpx, nyx):
        assert warpx.max_ratio_difference(Stage.END) < nyx.max_ratio_difference(
            Stage.END
        )


class TestBlockRatios:
    def test_all_fields_covered(self, nyx):
        ratios = nyx.block_ratios(0, 5, blocks_per_field=8, node_size=4)
        assert set(ratios) == {f.name for f in nyx.fields}
        assert all(len(r) == 8 for r in ratios.values())

    def test_ratios_positive(self, nyx):
        ratios = nyx.block_ratios(2, 20, blocks_per_field=4, node_size=4)
        for values in ratios.values():
            assert np.all(values > 1.0)

    def test_nyx_average_near_16x(self, nyx):
        all_ratios = []
        for rank in range(4):
            ratios = nyx.block_ratios(
                rank, 2, blocks_per_field=8, node_size=4
            )
            all_ratios.extend(v for r in ratios.values() for v in r)
        mean = float(np.mean(all_ratios))
        assert 10.0 < mean < 25.0

    def test_warpx_average_near_274x(self, warpx):
        all_ratios = []
        for rank in range(4):
            ratios = warpx.block_ratios(
                rank, 2, blocks_per_field=4, node_size=4
            )
            all_ratios.extend(v for r in ratios.values() for v in r)
        mean = float(np.mean(all_ratios))
        assert 150.0 < mean < 450.0

    def test_end_stage_wider_spread_across_ranks(self, nyx):
        def spread(stage_iteration):
            per_rank = []
            for rank in range(8):
                ratios = nyx.block_ratios(
                    rank, stage_iteration, 4, node_size=8
                )
                per_rank.append(np.mean(ratios["baryon_density"]))
            return max(per_rank) / min(per_rank)

        assert spread(29) > spread(0)

    def test_consecutive_iterations_ratios_similar(self, nyx):
        r0 = nyx.block_ratios(0, 10, 8, node_size=4)
        r1 = nyx.block_ratios(0, 11, 8, node_size=4)
        m0 = np.mean(r0["temperature"])
        m1 = np.mean(r1["temperature"])
        assert abs(m1 - m0) / m0 < 0.2


class TestGeneratedData:
    def test_shapes_and_dtypes(self, nyx):
        field = nyx.generate_field("baryon_density", 0, 0)
        assert field.shape == (32, 32, 32)
        assert field.dtype == np.float64

    def test_density_positive(self, nyx):
        field = nyx.generate_field("dark_matter_density", 0, 0)
        assert np.all(field > 0)

    def test_temperature_magnitudes(self, nyx):
        field = nyx.generate_field("temperature", 0, 0)
        assert 1e2 < np.median(field) < 1e7

    def test_structure_grows_with_iteration(self, nyx):
        early = nyx.generate_field("baryon_density", 0, 0)
        late = nyx.generate_field("baryon_density", 0, 29)
        # Clustering concentrates mass: higher relative variance later.
        cv_early = early.std() / early.mean()
        cv_late = late.std() / late.mean()
        assert cv_late > cv_early

    def test_consecutive_iterations_correlated(self, nyx):
        a = nyx.generate_field("velocity_x", 0, 10)
        b = nyx.generate_field("velocity_x", 0, 11)
        corr = np.corrcoef(a.reshape(-1), b.reshape(-1))[0, 1]
        assert corr > 0.95

    def test_nyx_fields_compress_near_target(self, nyx):
        comp = SZCompressor()
        field = nyx.generate_field("velocity_x", 0, 5)
        block = comp.compress(field, nyx.field("velocity_x").error_bound)
        assert block.compression_ratio > 4.0

    def test_warpx_fields_compress_extremely(self, warpx):
        comp = SZCompressor()
        field = warpx.generate_field("Ex", 0, 5)
        block = comp.compress(field, warpx.field("Ex").error_bound)
        assert block.compression_ratio > 50.0

    def test_warpx_blob_moves(self, warpx):
        early = warpx.generate_field("rho", 0, 0)
        late = warpx.generate_field("rho", 0, 29)
        z_early = np.argmax(np.abs(early).sum(axis=(0, 1)))
        z_late = np.argmax(np.abs(late).sum(axis=(0, 1)))
        assert z_late > z_early

    def test_unknown_field_rejected(self, nyx):
        with pytest.raises(KeyError):
            nyx.generate_field("nope", 0, 0)

    def test_different_ranks_different_data(self, nyx):
        a = nyx.generate_field("baryon_density", 0, 0)
        b = nyx.generate_field("baryon_density", 1, 0)
        assert not np.allclose(a, b)
