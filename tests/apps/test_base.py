"""Tests for the ApplicationModel base helpers."""

import numpy as np
import pytest

from repro.apps import HaccModel, NyxModel, Stage, WarpXModel


@pytest.fixture(params=[NyxModel, WarpXModel, HaccModel])
def app(request):
    cls = request.param
    if cls is HaccModel:
        return cls(seed=5, particles_per_rank=2**12)
    return cls(seed=5, partition_shape=(8, 8, 8))


class TestBaseHelpers:
    def test_field_lookup(self, app):
        first = app.fields[0]
        assert app.field(first.name) is first

    def test_unknown_field_raises(self, app):
        with pytest.raises(KeyError):
            app.field("definitely-not-a-field")

    def test_partition_nbytes(self, app):
        expected = (
            int(np.prod(app.partition_shape)) * app.dtype.itemsize
        )
        assert app.partition_nbytes() == expected

    def test_rng_namespacing(self, app):
        a = app._rng(1, 2).normal()
        b = app._rng(1, 2).normal()
        c = app._rng(2, 1).normal()
        assert a == b
        assert a != c


class TestRankMultipliers:
    def test_spread_respected(self):
        app = NyxModel(seed=5)
        for stage in Stage:
            multipliers = app.rank_multipliers(64, stage, iteration=3)
            realized = multipliers.max() / multipliers.min()
            target = app.max_ratio_difference(stage)
            # +-2.5 sigma clipping keeps the realized spread near (and
            # never wildly beyond) the configured max.
            assert realized <= target * 2.0
        wide = app.rank_multipliers(64, Stage.END, 3)
        narrow = app.rank_multipliers(64, Stage.BEGINNING, 3)
        assert (wide.max() / wide.min()) > (narrow.max() / narrow.min())

    def test_drift_is_small(self):
        app = NyxModel(seed=5)
        m0 = app.rank_multipliers(8, Stage.MIDDLE, iteration=10)
        m1 = app.rank_multipliers(8, Stage.MIDDLE, iteration=11)
        rel = np.abs(m1 - m0) / m0
        assert float(rel.mean()) < 0.05  # ~1.45 % drift target

    def test_multipliers_positive(self):
        app = WarpXModel(seed=5)
        multipliers = app.rank_multipliers(16, Stage.END, 7)
        assert np.all(multipliers > 0)

    def test_deterministic(self):
        a = NyxModel(seed=5).rank_multipliers(4, Stage.MIDDLE, 2)
        b = NyxModel(seed=5).rank_multipliers(4, Stage.MIDDLE, 2)
        assert np.array_equal(a, b)


class TestStageOf:
    @pytest.mark.parametrize("cls", [NyxModel, WarpXModel, HaccModel])
    def test_thirds(self, cls):
        kwargs = (
            {"particles_per_rank": 2**12}
            if cls is HaccModel
            else {"partition_shape": (8, 8, 8)}
        )
        app = cls(seed=5, total_iterations=30, **kwargs)
        assert app.stage_of(0, 30) == Stage.BEGINNING
        assert app.stage_of(14, 30) == Stage.MIDDLE
        assert app.stage_of(29, 30) == Stage.END

    def test_single_iteration_run(self):
        app = NyxModel(seed=5, partition_shape=(8, 8, 8))
        assert app.stage_of(0, 1) == Stage.BEGINNING
