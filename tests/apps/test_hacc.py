"""Tests for the HACC-like particle application model (extension)."""

import numpy as np
import pytest

from repro.apps import HaccModel, NyxModel, Stage
from repro.compression import SZCompressor
from repro.framework import (
    async_io_config,
    baseline_config,
    ours_config,
)


@pytest.fixture
def hacc():
    return HaccModel(seed=3, particles_per_rank=2**14)


class TestHaccModel:
    def test_fields_are_particle_arrays(self, hacc):
        assert len(hacc.fields) == 6
        data = hacc.generate_field("xx", 0, 0)
        assert data.ndim == 1
        assert data.size == 2**14

    def test_low_ratio_regime(self, hacc):
        nyx = NyxModel()
        hacc_mean = np.mean([f.base_ratio for f in hacc.fields])
        nyx_mean = np.mean([f.base_ratio for f in nyx.fields])
        assert hacc_mean < nyx_mean / 2

    def test_small_rank_spread(self, hacc):
        assert hacc.max_ratio_difference(Stage.END) <= 2.0

    def test_positions_sorted_and_drifting(self, hacc):
        early = hacc.generate_field("xx", 0, 0)
        late = hacc.generate_field("xx", 0, 29)
        # Locally correlated: sorted base + small scatter.
        assert np.mean(np.diff(early) >= -0.1) > 0.95
        assert late.mean() > early.mean()  # coherent drift

    def test_consecutive_iterations_similar(self, hacc):
        a = hacc.generate_field("vx", 0, 10)
        b = hacc.generate_field("vx", 0, 11)
        corr = np.corrcoef(a, b)[0, 1]
        assert corr > 0.9

    def test_error_bounds_hold_under_real_compression(self, hacc):
        compressor = SZCompressor()
        for name in ("yy", "vz"):
            data = hacc.generate_field(name, 1, 4)
            bound = hacc.field(name).error_bound
            block = compressor.compress(data, bound)
            recon = compressor.decompress(block)
            assert np.max(np.abs(data - recon)) <= bound * (1 + 1e-9)
            assert block.compression_ratio > 2.0

    def test_block_ratios_structure(self, hacc):
        ratios = hacc.block_ratios(0, 5, blocks_per_field=4, node_size=4)
        assert set(ratios) == {f.name for f in hacc.fields}
        for values in ratios.values():
            assert np.all(values > 1.0)

    def test_campaign_ordering_still_holds(self, hacc):
        """Even at low ratios the solution ordering must hold — HACC sits
        at the Figure 7 low-ratio end where gains are smallest."""
        from repro.framework import CampaignRunner
        from repro.simulator import ClusterSpec

        cluster = ClusterSpec(num_nodes=1, processes_per_node=4)
        app = HaccModel(seed=3)  # default (production-like) volume
        results = {}
        for name, config in (
            ("baseline", baseline_config()),
            ("previous", async_io_config()),
            ("ours", ours_config()),
        ):
            runner = CampaignRunner(
                app, cluster, config, solution=name, seed=3
            )
            results[name] = runner.run(4).mean_relative_overhead
        assert results["ours"] < results["previous"] < results["baseline"]

    def test_gains_smaller_than_nyx(self):
        """HACC's improvement factor must be below Nyx's (lower CR means
        more compressed data to write)."""
        from repro.framework import CampaignRunner
        from repro.simulator import ClusterSpec

        cluster = ClusterSpec(num_nodes=1, processes_per_node=4)

        def factor(app):
            overheads = {}
            for name, config in (
                ("baseline", baseline_config()),
                ("ours", ours_config()),
            ):
                runner = CampaignRunner(
                    app, cluster, config, solution=name, seed=3
                )
                overheads[name] = runner.run(4).mean_relative_overhead
            return overheads["baseline"] / overheads["ours"]

        hacc_factor = factor(HaccModel(seed=3))
        nyx_factor = factor(NyxModel(seed=3))
        assert hacc_factor < nyx_factor * 1.5  # not wildly better
