"""Tests for interval-pattern generation and jitter."""

import numpy as np
import pytest

from repro.apps import generate_profile, jitter_profile


@pytest.fixture
def profile(rng):
    return generate_profile(
        length=10.0,
        num_main_tasks=5,
        main_busy_fraction=0.5,
        num_background_tasks=3,
        background_busy_fraction=0.3,
        rng=rng,
    )


class TestGenerateProfile:
    def test_busy_fractions_hit_targets(self, profile):
        assert profile.busy_fraction_main() == pytest.approx(0.5, abs=0.01)
        assert profile.busy_fraction_background() == pytest.approx(
            0.3, abs=0.01
        )

    def test_task_counts(self, profile):
        assert len(profile.main_obstacles) == 5
        assert len(profile.background_obstacles) == 3

    def test_obstacles_sorted_disjoint_within_window(self, profile):
        for obstacles in (
            profile.main_obstacles,
            profile.background_obstacles,
        ):
            cursor = 0.0
            for obs in obstacles:
                assert obs.start >= cursor - 1e-9
                assert obs.end <= profile.length + 1e-9
                cursor = obs.end

    def test_lead_in_gap_present(self, profile):
        assert profile.main_obstacles[0].start > 0.0

    def test_zero_tasks(self, rng):
        profile = generate_profile(10.0, 0, 0.0, 0, 0.0, rng)
        assert profile.main_obstacles == ()
        assert profile.background_obstacles == ()

    def test_invalid_fraction_rejected(self, rng):
        with pytest.raises(ValueError):
            generate_profile(10.0, 2, 1.0, 0, 0.0, rng)
        with pytest.raises(ValueError):
            generate_profile(10.0, 2, 0.5, 2, -0.1, rng)

    def test_deterministic_given_rng_state(self):
        a = generate_profile(
            5.0, 3, 0.4, 2, 0.2, np.random.default_rng(7)
        )
        b = generate_profile(
            5.0, 3, 0.4, 2, 0.2, np.random.default_rng(7)
        )
        assert a == b


class TestJitterProfile:
    def test_zero_sigma_identity_shape(self, profile, rng):
        jittered = jitter_profile(profile, rng, sigma_fraction=0.0)
        assert jittered.length == profile.length
        # Endpoints may clamp but with zero sigma must be identical.
        assert jittered.main_obstacles == profile.main_obstacles

    def test_jitter_preserves_structure(self, profile, rng):
        jittered = jitter_profile(profile, rng, sigma_fraction=0.02)
        assert len(jittered.main_obstacles) == len(profile.main_obstacles)
        cursor = 0.0
        for obs in jittered.main_obstacles:
            assert obs.start >= cursor - 1e-9
            cursor = obs.end

    def test_jitter_small_relative_displacement(self, profile, rng):
        jittered = jitter_profile(profile, rng, sigma_fraction=0.01)
        for a, b in zip(profile.main_obstacles, jittered.main_obstacles):
            assert abs(a.start - b.start) < profile.length * 0.1

    def test_heavy_jitter_still_valid(self, profile, rng):
        for _ in range(20):
            jittered = jitter_profile(profile, rng, sigma_fraction=0.2)
            cursor = 0.0
            for obs in (
                jittered.main_obstacles + jittered.background_obstacles
            ):
                assert obs.duration >= 0.0
            for obs in jittered.main_obstacles:
                assert obs.start >= cursor - 1e-9
                cursor = obs.end
            assert jittered.length > 0


class TestProfileSerialization:
    def test_round_trip(self, profile):
        from repro.apps import profile_from_json, profile_to_json

        restored = profile_from_json(profile_to_json(profile))
        assert restored == profile

    def test_loaded_profile_drives_scheduling(self, profile):
        from repro.apps import profile_from_json, profile_to_json
        from repro.core import Job, ProblemInstance, ext_johnson_backfill

        restored = profile_from_json(profile_to_json(profile))
        instance = ProblemInstance(
            begin=0.0,
            end=restored.length,
            jobs=(Job(0, 0.5, 0.5),),
            main_obstacles=restored.main_obstacles,
            background_obstacles=restored.background_obstacles,
        )
        ext_johnson_backfill(instance).validate()

    def test_garbage_rejected(self):
        import pytest as _pytest

        from repro.apps import profile_from_json

        with _pytest.raises(Exception):
            profile_from_json("{not json")
