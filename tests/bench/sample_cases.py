"""Registered sample cases the runner/CLI tests execute for real.

Importing this module populates the shared registry; every name is
prefixed ``sample.`` (group ``sample``) so CLI tests that run the real
figure cases can filter these out.  Only the well-behaved case opts into
the quick suite — the crashing/sleeping ones are full-suite only, so a
stray ``--quick`` run in the same process never trips over them.
"""

from __future__ import annotations

import time

from repro.bench import bench_case


@bench_case("sample.ok", group="sample", quick=True, warmup=1, repeats=3,
            timeout_s=30.0)
def ok_case(n=2000):
    return sum(range(n))


@bench_case("sample.ok2", group="sample", warmup=0, repeats=2,
            timeout_s=30.0)
def ok2_case():
    return sum(range(1000))


@bench_case("sample.crash", group="sample", warmup=0, repeats=1,
            timeout_s=30.0)
def crash_case():
    raise RuntimeError("boom")


@bench_case("sample.sleepy", group="sample", warmup=0, repeats=1,
            timeout_s=0.3)
def sleepy_case():
    time.sleep(30.0)
