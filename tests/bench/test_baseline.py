"""Baseline comparator: verdicts, exit codes, regression naming."""

from __future__ import annotations

import pytest

from repro.bench import compare_documents


def _case(name: str, median: float, status: str = "ok", group: str = "g"):
    stats = None
    if status == "ok":
        stats = {
            "min_s": median,
            "max_s": median,
            "mean_s": median,
            "median_s": median,
            "stdev_s": 0.0,
            "iqr_s": 0.0,
            "outliers": [],
        }
    return {
        "name": name,
        "group": group,
        "status": status,
        "warmup": 0,
        "repeats": 3,
        "samples_s": [median] * 3 if status == "ok" else [],
        "stats": stats,
        "error": None if status == "ok" else "boom",
    }


def _doc(*cases: dict) -> dict:
    return {
        "schema": "repro.bench",
        "version": 1,
        "name": "quick",
        "created_unix": 0.0,
        "quick": True,
        "environment": {},
        "cases": list(cases),
    }


def _verdict(comparison, name):
    return next(c for c in comparison.cases if c.name == name).verdict


class TestVerdicts:
    def test_regression_detected_and_named(self):
        current = _doc(_case("a", 1.0), _case("b", 1.0))
        baseline = _doc(_case("a", 1.0), _case("b", 0.1))  # b now 10x slower
        comparison = compare_documents(current, baseline, threshold=0.25)
        assert _verdict(comparison, "a") == "unchanged"
        assert _verdict(comparison, "b") == "regressed"
        assert [c.name for c in comparison.regressed] == ["b"]
        assert comparison.exit_code == 1
        formatted = comparison.format()
        assert "regressed: b" in formatted
        assert "10.00x" in formatted

    def test_improvement_and_unchanged_band(self):
        current = _doc(
            _case("faster", 0.5),
            _case("same_low", 0.8),
            _case("same_high", 1.2),
        )
        baseline = _doc(
            _case("faster", 1.0),
            _case("same_low", 1.0),
            _case("same_high", 1.0),
        )
        comparison = compare_documents(current, baseline, threshold=0.25)
        assert _verdict(comparison, "faster") == "improved"
        assert _verdict(comparison, "same_low") == "unchanged"
        assert _verdict(comparison, "same_high") == "unchanged"
        assert comparison.exit_code == 0
        assert "no regressions" in comparison.format()

    def test_failed_current_case_gates(self):
        current = _doc(_case("a", 1.0, status="timeout"))
        baseline = _doc(_case("a", 1.0))
        comparison = compare_documents(current, baseline)
        assert _verdict(comparison, "a") == "failed"
        assert comparison.exit_code == 1

    def test_added_and_missing_are_informational(self):
        current = _doc(_case("new", 1.0))
        baseline = _doc(_case("old", 1.0))
        comparison = compare_documents(current, baseline)
        assert _verdict(comparison, "new") == "added"
        assert _verdict(comparison, "old") == "missing"
        assert comparison.exit_code == 0
        formatted = comparison.format()
        assert "added: new" in formatted
        assert "missing: old" in formatted

    def test_failed_baseline_case_counts_as_added(self):
        current = _doc(_case("a", 1.0))
        baseline = _doc(_case("a", 1.0, status="failed"))
        comparison = compare_documents(current, baseline)
        assert _verdict(comparison, "a") == "added"
        assert comparison.exit_code == 0

    def test_zero_baseline_median(self):
        comparison = compare_documents(
            _doc(_case("a", 1.0)), _doc(_case("a", 0.0))
        )
        assert _verdict(comparison, "a") == "regressed"
        comparison = compare_documents(
            _doc(_case("a", 0.0)), _doc(_case("a", 0.0))
        )
        assert _verdict(comparison, "a") == "unchanged"

    def test_threshold_boundary_is_inclusive(self):
        # Exactly at the band edge counts as unchanged, not regressed.
        comparison = compare_documents(
            _doc(_case("a", 1.25)), _doc(_case("a", 1.0)), threshold=0.25
        )
        assert _verdict(comparison, "a") == "unchanged"

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            compare_documents(_doc(), _doc(), threshold=-0.1)
