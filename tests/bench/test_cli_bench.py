"""The ``repro bench`` CLI: run/list/compare end to end."""

from __future__ import annotations

import json

import pytest

from repro.bench import load_document, write_document
from repro.cli import build_parser, main


class TestParser:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as info:
            build_parser().parse_args(["--version"])
        assert info.value.code == 0
        assert "repro 1.0.0" in capsys.readouterr().out

    def test_bench_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench"])

    def test_run_defaults(self):
        args = build_parser().parse_args(["bench", "run"])
        assert args.jobs == 1
        assert not args.quick
        assert args.out is None
        assert args.baseline is None

    def test_compare_requires_baseline(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "compare", "cur.json"])
        args = build_parser().parse_args(
            ["bench", "compare", "cur.json", "--baseline", "base.json",
             "--threshold", "5.0"]
        )
        assert args.current == "cur.json"
        assert args.threshold == 5.0


class TestList:
    def test_lists_registered_figure_cases(self, capsys):
        assert main(["bench", "list", "--filter", "figures/"]) == 0
        out = capsys.readouterr().out
        assert "fig5.buffer_plan" in out
        assert "fig4.blocksize_campaign" in out
        assert "fig11.weak_scaling" in out

    def test_no_match_exits_1(self, capsys):
        assert main(["bench", "list", "--filter", "zzz-no-such"]) == 1
        assert "no bench cases matched" in capsys.readouterr().err


class TestRun:
    def test_quick_run_writes_valid_document(self, tmp_path, capsys):
        out = tmp_path / "BENCH_quick.json"
        assert (
            main(
                [
                    "bench",
                    "run",
                    "--quick",
                    "--filter",
                    "fig5.buffer_plan",
                    "--out",
                    str(out),
                ]
            )
            == 0
        )
        text = capsys.readouterr().out
        assert "fig5.buffer_plan" in text
        doc = load_document(out)  # validates against the schema
        assert doc["quick"] is True
        assert [c["name"] for c in doc["cases"]] == ["fig5.buffer_plan"]
        assert doc["cases"][0]["status"] == "ok"
        assert len(doc["cases"][0]["samples_s"]) == 3

    def test_run_then_compare_against_tampered_baseline(
        self, tmp_path, capsys
    ):
        out = tmp_path / "BENCH_quick.json"
        assert (
            main(
                ["bench", "run", "--quick", "--filter", "fig5",
                 "--out", str(out)]
            )
            == 0
        )
        capsys.readouterr()
        doc = load_document(out)
        # Tamper: shrink the baseline median 10x, so the (identical)
        # current run reads as 10x slower than baseline.
        tampered = json.loads(json.dumps(doc))
        for case in tampered["cases"]:
            if case["name"] == "fig5.buffer_plan":
                case["stats"]["median_s"] /= 10.0
        baseline = tmp_path / "BENCH_baseline.json"
        write_document(tampered, baseline)
        code = main(
            ["bench", "compare", str(out), "--baseline", str(baseline)]
        )
        assert code == 1
        text = capsys.readouterr().out
        assert "regressed: fig5.buffer_plan" in text

    def test_compare_against_itself_passes(self, tmp_path, capsys):
        out = tmp_path / "BENCH_quick.json"
        assert (
            main(
                ["bench", "run", "--quick", "--filter", "fig5",
                 "--out", str(out)]
            )
            == 0
        )
        capsys.readouterr()
        assert (
            main(["bench", "compare", str(out), "--baseline", str(out)])
            == 0
        )
        assert "no regressions" in capsys.readouterr().out

    def test_missing_baseline_file_exits_2(self, tmp_path, capsys):
        current = tmp_path / "cur.json"
        current.write_text("{}")
        assert (
            main(
                ["bench", "compare", str(current), "--baseline",
                 str(tmp_path / "none.json")]
            )
            == 2
        )
        assert "error:" in capsys.readouterr().err
