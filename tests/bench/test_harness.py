"""Harness: deterministic timing via injected clocks, robust statistics."""

from __future__ import annotations

import pytest

from repro.bench import (
    BenchCase,
    BenchSample,
    environment_fingerprint,
    run_case,
    summarize,
)


def _scripted_clock(*values: float):
    it = iter(values)
    return lambda: next(it)


class TestRunCase:
    def test_deterministic_samples_from_fake_clock(self):
        case = BenchCase(
            name="c", func=lambda: None, warmup=0, repeats=3
        )
        result = run_case(
            case, clock=_scripted_clock(0.0, 1.0, 10.0, 12.0, 20.0, 21.0)
        )
        assert result.status == "ok"
        assert [s.seconds for s in result.samples] == [1.0, 2.0, 1.0]
        assert result.stats.median_s == 1.0
        assert result.stats.min_s == 1.0
        assert result.stats.max_s == 2.0
        assert result.stats.mean_s == pytest.approx(4.0 / 3.0)

    def test_warmup_calls_are_untimed(self):
        calls = []
        case = BenchCase(
            name="c", func=lambda: calls.append(1), warmup=2, repeats=3
        )
        result = run_case(case, clock=_scripted_clock(*range(6)))
        assert len(calls) == 5  # 2 warmup + 3 timed
        assert len(result.samples) == 3

    def test_kwargs_reach_the_callable(self):
        seen = {}
        case = BenchCase(
            name="c",
            func=lambda edge: seen.setdefault("edge", edge),
            kwargs={"edge": 24},
            warmup=0,
            repeats=1,
        )
        run_case(case, clock=_scripted_clock(0.0, 1.0))
        assert seen == {"edge": 24}

    def test_exceptions_propagate(self):
        case = BenchCase(
            name="c",
            func=lambda: (_ for _ in ()).throw(ValueError("nope")),
            warmup=0,
            repeats=1,
        )
        with pytest.raises(ValueError):
            run_case(case)

    def test_validation(self):
        with pytest.raises(ValueError):
            BenchCase(name="c", func=lambda: None, warmup=-1)
        with pytest.raises(ValueError):
            BenchCase(name="c", func=lambda: None, repeats=0)


class TestSummarize:
    def _samples(self, *seconds: float):
        return [
            BenchSample(index=i, seconds=s) for i, s in enumerate(seconds)
        ]

    def test_single_sample(self):
        stats = summarize(self._samples(2.5))
        assert stats.min_s == stats.max_s == stats.median_s == 2.5
        assert stats.stdev_s == 0.0
        assert stats.outliers == ()

    def test_outlier_flagged_by_iqr(self):
        stats = summarize(self._samples(1.0, 1.0, 1.0, 1.0, 10.0))
        assert stats.outliers == (4,)

    def test_uniform_samples_have_no_outliers(self):
        stats = summarize(self._samples(1.0, 1.0, 1.0, 1.0, 1.0))
        assert stats.outliers == ()
        assert stats.iqr_s == 0.0

    def test_fewer_than_four_samples_never_flag(self):
        stats = summarize(self._samples(1.0, 100.0, 1.0))
        assert stats.outliers == ()

    def test_zero_samples_rejected(self):
        with pytest.raises(ValueError):
            summarize([])


class TestFingerprint:
    def test_fingerprint_fields(self):
        fp = environment_fingerprint()
        assert set(fp) == {
            "python",
            "platform",
            "cpu_count",
            "git_sha",
            "repro_version",
        }
        assert fp["repro_version"] == __import__("repro").__version__
        assert fp["cpu_count"] >= 1
        # In this checkout the SHA resolves; "unknown" is the documented
        # fallback outside a git worktree.
        assert fp["git_sha"] == "unknown" or len(fp["git_sha"]) == 40
