"""Registry: decorator registration, quick variants, selection, discovery."""

from __future__ import annotations

import pytest

from repro.bench import REGISTRY, BenchRegistry, bench_case, discover_benchmarks


def _register_pair(registry: BenchRegistry):
    @bench_case(
        "alpha.full_only",
        group="alpha",
        params={"edge": 128},
        warmup=0,
        repeats=2,
        registry=registry,
    )
    def full_only(edge=128):
        return edge

    @bench_case(
        "alpha.sized",
        group="alpha",
        params={"edge": 128, "iterations": 4},
        quick={"edge": 16},
        registry=registry,
    )
    def sized(edge=128, iterations=4):
        return edge * iterations

    return full_only, sized


class TestRegistration:
    def test_decorator_returns_function_unchanged(self):
        registry = BenchRegistry()
        full_only, _ = _register_pair(registry)
        assert full_only(edge=2) == 2
        assert len(registry) == 2
        assert "alpha.sized" in registry

    def test_duplicate_name_different_function_rejected(self):
        registry = BenchRegistry()
        _register_pair(registry)
        with pytest.raises(ValueError, match="already registered"):
            @bench_case("alpha.sized", registry=registry)
            def other():
                pass

    def test_reregistration_of_same_function_is_idempotent(self):
        registry = BenchRegistry()

        def make():
            @bench_case("beta.case", registry=registry, repeats=5)
            def beta_case():
                pass

        make()
        make()
        assert registry.get("beta.case").repeats == 5

    def test_unknown_name_lists_known(self):
        registry = BenchRegistry()
        _register_pair(registry)
        with pytest.raises(KeyError, match="alpha.sized"):
            registry.get("nope")


class TestResolve:
    def test_full_params(self):
        registry = BenchRegistry()
        _, _ = _register_pair(registry)
        bench = registry.get("alpha.sized").resolve(quick=False)
        assert bench.kwargs == {"edge": 128, "iterations": 4}

    def test_quick_overrides_merge_over_params(self):
        registry = BenchRegistry()
        _register_pair(registry)
        bench = registry.get("alpha.sized").resolve(quick=True)
        assert bench.kwargs == {"edge": 16, "iterations": 4}

    def test_quick_true_keeps_full_params(self):
        registry = BenchRegistry()

        @bench_case("g.case", params={"n": 3}, quick=True, registry=registry)
        def case(n=3):
            pass

        assert registry.get("g.case").resolve(quick=True).kwargs == {"n": 3}

    def test_no_quick_variant_raises(self):
        registry = BenchRegistry()
        _register_pair(registry)
        with pytest.raises(ValueError, match="no quick variant"):
            registry.get("alpha.full_only").resolve(quick=True)


class TestSelect:
    def test_quick_selection_excludes_full_only(self):
        registry = BenchRegistry()
        _register_pair(registry)
        names = [c.name for c in registry.select(quick=True)]
        assert names == ["alpha.sized"]

    def test_filter_is_substring_over_group_and_name(self):
        registry = BenchRegistry()
        _register_pair(registry)
        assert [
            c.name for c in registry.select(filter="FULL")
        ] == ["alpha.full_only"]
        assert [
            c.name for c in registry.select(filter="alpha/")
        ] == ["alpha.full_only", "alpha.sized"]
        assert registry.select(filter="zzz") == []

    def test_ordering_by_group_then_name(self):
        registry = BenchRegistry()

        @bench_case("z.last", group="zeta", registry=registry)
        def z():
            pass

        _register_pair(registry)
        names = [c.name for c in registry.select()]
        assert names == ["alpha.full_only", "alpha.sized", "z.last"]


class TestDiscovery:
    def test_discovers_the_migrated_figure_scripts(self):
        imported, errors = discover_benchmarks()
        assert errors == []
        assert "benchmarks.bench_fig5_buffer" in imported
        for name in (
            "table1.scheduler_sweep",
            "table1.local_search",
            "fig4.blocksize_campaign",
            "fig5.buffer_plan",
            "fig11.weak_scaling",
        ):
            assert name in REGISTRY, name
        # Every migrated case ships a CI-sized quick variant.
        quick = {c.name for c in REGISTRY.select(quick=True)}
        assert "fig5.buffer_plan" in quick
        assert "fig11.weak_scaling" in quick

    def test_missing_directory_reports_not_raises(self, tmp_path):
        imported, errors = discover_benchmarks(tmp_path / "absent")
        assert imported == []
        assert errors and "no benchmarks" in errors[0]
