"""Runner: failure isolation, timeouts, parallel execution, telemetry."""

from __future__ import annotations

import time

from repro.bench import REGISTRY, run_benchmarks
from repro.telemetry import Tracer

from . import sample_cases  # noqa: F401 — registers the sample.* cases


def _cases(*names: str):
    return [REGISTRY.get(name) for name in names]


class TestSerial:
    def test_all_ok(self):
        report = run_benchmarks(_cases("sample.ok", "sample.ok2"))
        assert report.ok
        assert [r.status for r in report.results] == ["ok", "ok"]
        assert all(r.stats is not None for r in report.results)
        assert report.environment["cpu_count"] >= 1

    def test_crashing_case_is_isolated(self):
        report = run_benchmarks(
            _cases("sample.crash", "sample.ok")
        )
        crash, ok = report.results
        assert crash.status == "failed"
        assert "boom" in crash.error
        assert crash.stats is None
        assert ok.status == "ok"
        assert not report.ok
        assert report.failed == (crash,)

    def test_timeout_is_enforced_and_isolated(self):
        t0 = time.perf_counter()
        report = run_benchmarks(_cases("sample.sleepy", "sample.ok"))
        elapsed = time.perf_counter() - t0
        sleepy, ok = report.results
        assert sleepy.status == "timeout"
        assert "wall budget" in sleepy.error
        assert ok.status == "ok"
        assert elapsed < 10.0  # nowhere near the 30s sleep

    def test_results_preserve_case_order(self):
        report = run_benchmarks(
            _cases("sample.ok2", "sample.ok", "sample.crash")
        )
        assert [r.name for r in report.results] == [
            "sample.ok2",
            "sample.ok",
            "sample.crash",
        ]


class TestParallel:
    def test_mixed_outcomes_with_two_workers(self):
        report = run_benchmarks(
            _cases("sample.ok", "sample.crash", "sample.sleepy", "sample.ok2"),
            jobs=2,
        )
        by_name = {r.name: r for r in report.results}
        assert by_name["sample.ok"].status == "ok"
        assert by_name["sample.ok2"].status == "ok"
        assert by_name["sample.crash"].status == "failed"
        assert "boom" in by_name["sample.crash"].error
        assert by_name["sample.sleepy"].status == "timeout"

    def test_parallel_matches_serial_statuses(self):
        serial = run_benchmarks(_cases("sample.ok", "sample.ok2"))
        parallel = run_benchmarks(
            _cases("sample.ok", "sample.ok2"), jobs=2
        )
        assert [r.status for r in serial.results] == [
            r.status for r in parallel.results
        ]


class TestTelemetry:
    def test_bench_case_spans_and_counters(self):
        tracer = Tracer()
        run_benchmarks(
            _cases("sample.ok", "sample.crash"), tracer=tracer
        )
        spans = [
            s for s in tracer.recorder.spans if s.name == "bench.case"
        ]
        assert len(spans) == 2
        statuses = {s.attrs["case"]: s.attrs["status"] for s in spans}
        assert statuses == {
            "sample.ok": "ok",
            "sample.crash": "failed",
        }
        ok_span = next(
            s for s in spans if s.attrs["case"] == "sample.ok"
        )
        assert ok_span.attrs["median_s"] > 0
        assert tracer.counter("bench.ok").value == 1
        assert tracer.counter("bench.failed").value == 1
