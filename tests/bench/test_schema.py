"""Schema: round-trips, validation of tampered/truncated documents."""

from __future__ import annotations

import json

import pytest

from repro.bench import (
    BenchCase,
    SCHEMA_NAME,
    SCHEMA_VERSION,
    SchemaError,
    load_document,
    report_to_document,
    run_case,
    validate_document,
    write_document,
)
from repro.bench.runner import BenchReport
from repro.bench.schema import result_from_dict, result_to_dict


def _fake_clock(count: int):
    it = iter(range(2 * count + 2))
    return lambda: float(next(it))


def _report() -> BenchReport:
    results = tuple(
        run_case(
            BenchCase(name=f"case.{i}", func=lambda: None, group="g",
                      warmup=0, repeats=4),
            clock=_fake_clock(8),
        )
        for i in range(2)
    )
    return BenchReport(
        results=results,
        environment={
            "python": "3.11.0",
            "platform": "test",
            "cpu_count": 4,
            "git_sha": "unknown",
            "repro_version": "1.0.0",
        },
        quick=True,
        elapsed_s=1.0,
    )


class TestRoundTrip:
    def test_result_dict_round_trip(self):
        original = _report().results[0]
        restored = result_from_dict(result_to_dict(original))
        assert restored == original

    def test_document_validates_and_survives_disk(self, tmp_path):
        doc = report_to_document(_report(), name="quick")
        validate_document(doc)
        path = tmp_path / "BENCH_quick.json"
        write_document(doc, path)
        loaded = load_document(path)
        assert loaded == json.loads(json.dumps(doc))  # exact JSON identity
        assert loaded["schema"] == SCHEMA_NAME
        assert loaded["version"] == SCHEMA_VERSION
        assert loaded["quick"] is True
        assert [c["name"] for c in loaded["cases"]] == ["case.0", "case.1"]

    def test_failed_result_round_trips_without_stats(self):
        from repro.bench import BenchResult

        failed = BenchResult(
            name="f", group="g", status="failed", warmup=0, repeats=1,
            error="Traceback: boom",
        )
        restored = result_from_dict(result_to_dict(failed))
        assert restored == failed


class TestValidation:
    def _doc(self) -> dict:
        return report_to_document(_report(), name="quick")

    def _problems(self, doc) -> str:
        with pytest.raises(SchemaError) as info:
            validate_document(doc)
        return "; ".join(info.value.problems)

    def test_wrong_schema_and_version(self):
        doc = self._doc()
        doc["schema"] = "other"
        doc["version"] = 99
        problems = self._problems(doc)
        assert "schema" in problems and "version" in problems

    def test_missing_environment_key(self):
        doc = self._doc()
        del doc["environment"]["git_sha"]
        assert "environment.git_sha" in self._problems(doc)

    def test_bad_status_and_samples(self):
        doc = self._doc()
        doc["cases"][0]["status"] = "exploded"
        doc["cases"][1]["samples_s"] = [1.0, "fast"]
        problems = self._problems(doc)
        assert "status" in problems and "samples_s" in problems

    def test_ok_case_requires_stats(self):
        doc = self._doc()
        doc["cases"][0]["stats"] = None
        assert "stats is required" in self._problems(doc)

    def test_failed_case_requires_error(self):
        doc = self._doc()
        doc["cases"][0]["status"] = "failed"
        doc["cases"][0]["error"] = None
        assert "error is required" in self._problems(doc)

    def test_duplicate_case_names(self):
        doc = self._doc()
        doc["cases"][1]["name"] = doc["cases"][0]["name"]
        assert "duplicated" in self._problems(doc)

    def test_non_object_document(self):
        with pytest.raises(SchemaError):
            validate_document([1, 2, 3])

    def test_truncated_json_on_disk(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text('{"schema": "repro.bench", "vers')
        with pytest.raises(SchemaError, match="not valid JSON"):
            load_document(path)

    def test_every_problem_reported_at_once(self):
        doc = self._doc()
        doc["schema"] = "other"
        doc["quick"] = "yes"
        del doc["environment"]["python"]
        with pytest.raises(SchemaError) as info:
            validate_document(doc)
        assert len(info.value.problems) == 3
