"""Tests for the Section 4.1 offline block-size profiler."""

import numpy as np
import pytest

from repro.compression import (
    SZCompressor,
    build_codebook,
    profile_block_sizes,
)
from repro.io import IoThroughputModel


@pytest.fixture
def sample(rng):
    return np.cumsum(rng.normal(size=2**16), axis=0)  # 512 KiB float64


_CANDIDATES = (8 * 1024, 32 * 1024, 128 * 1024)


class TestProfiler:
    def test_profiles_every_candidate(self, sample):
        result = profile_block_sizes(
            sample, 0.05, candidate_bytes=_CANDIDATES, repeats=1
        )
        assert len(result.profiles) == len(_CANDIDATES)
        assert {p.block_bytes for p in result.profiles} == set(_CANDIDATES)

    def test_recommendation_among_candidates(self, sample):
        result = profile_block_sizes(
            sample, 0.05, candidate_bytes=_CANDIDATES, repeats=1
        )
        assert result.recommended_block_bytes in _CANDIDATES

    def test_efficiency_normalized(self, sample):
        result = profile_block_sizes(
            sample, 0.05, candidate_bytes=_CANDIDATES, repeats=1
        )
        effs = [p.combined_efficiency for p in result.profiles]
        assert max(effs) == pytest.approx(1.0)
        assert all(0.0 < e <= 1.0 for e in effs)

    def test_io_efficiency_grows_with_block_size(self, sample):
        result = profile_block_sizes(
            sample,
            0.05,
            candidate_bytes=_CANDIDATES,
            repeats=1,
            io_model=IoThroughputModel(),
        )
        by_size = sorted(result.profiles, key=lambda p: p.block_bytes)
        io_effs = [p.io_efficiency for p in by_size]
        assert io_effs == sorted(io_effs)

    def test_tight_tolerance_prefers_larger_blocks(self, sample):
        loose = profile_block_sizes(
            sample, 0.05, candidate_bytes=_CANDIDATES, repeats=1,
            tolerance=0.9,
        )
        tight = profile_block_sizes(
            sample, 0.05, candidate_bytes=_CANDIDATES, repeats=1,
            tolerance=0.0,
        )
        assert loose.recommended_block_bytes <= tight.recommended_block_bytes

    def test_shared_codebook_path(self, sample):
        compressor = SZCompressor()
        hist = compressor.histogram(sample, 0.05)
        shared = build_codebook(
            hist, force_symbols=(compressor.sentinel,)
        )
        result = profile_block_sizes(
            sample,
            0.05,
            candidate_bytes=_CANDIDATES,
            repeats=1,
            compressor=compressor,
            shared_codebook=shared,
        )
        assert result.recommended_block_bytes in _CANDIDATES

    def test_oversized_candidate_rejected(self, sample):
        with pytest.raises(ValueError, match="exceeds the sample"):
            profile_block_sizes(
                sample, 0.05, candidate_bytes=(2**30,), repeats=1
            )

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            profile_block_sizes(np.zeros(0), 0.05)
