"""Tests for fine-grained blocking and the compressed data buffer."""

import numpy as np
import pytest

from repro.compression import (
    CompressedDataBuffer,
    plan_blocks,
    reassemble_field,
    slice_field,
)


class TestPlanBlocks:
    def test_64mb_field_into_8mb_blocks(self):
        # 256^3 float32 = 64 MiB -> 8 blocks of 8 MiB (paper's example).
        specs = plan_blocks("density", (256, 256, 256), 4, 8 * 2**20)
        assert len(specs) == 8
        assert all(s.shape == (32, 256, 256) for s in specs)

    def test_small_field_stays_whole(self):
        specs = plan_blocks("f", (16, 16), 8, 8 * 2**20)
        assert len(specs) == 1
        assert specs[0].shape == (16, 16)

    def test_even_division_enforced(self):
        # 10 rows cannot split into 3; nearest divisor wins.
        specs = plan_blocks("f", (10, 100, 100), 8, 270_000)
        rows = [s.end_row - s.start_row for s in specs]
        assert len(set(rows)) == 1
        assert sum(rows) == 10

    def test_blocks_cover_field_without_overlap(self):
        specs = plan_blocks("f", (128, 64, 64), 4, 2**20)
        covered = np.zeros(128, dtype=int)
        for s in specs:
            covered[s.start_row : s.end_row] += 1
        assert np.all(covered == 1)

    def test_invalid_target_rejected(self):
        with pytest.raises(ValueError):
            plan_blocks("f", (8, 8), 4, 0)

    def test_empty_shape_rejected(self):
        with pytest.raises(ValueError):
            plan_blocks("f", (), 4, 100)

    def test_block_indices_sequential(self):
        specs = plan_blocks("f", (64, 32, 32), 8, 2**18)
        assert [s.block_index for s in specs] == list(range(len(specs)))

    def test_num_values(self):
        specs = plan_blocks("f", (64, 8), 8, 1024)
        assert sum(s.num_values() for s in specs) == 64 * 8


class TestSliceReassemble:
    def test_round_trip(self, rng):
        field = rng.normal(size=(32, 16, 16))
        specs = plan_blocks("f", field.shape, field.itemsize, 8 * 16 * 16 * 4)
        blocks = [(s, slice_field(field, s).copy()) for s in specs]
        assert np.array_equal(reassemble_field(blocks), field)

    def test_shuffled_blocks_reassemble(self, rng):
        field = rng.normal(size=(24, 8))
        specs = plan_blocks("f", field.shape, field.itemsize, 8 * 8 * 4)
        blocks = [(s, slice_field(field, s).copy()) for s in specs]
        blocks.reverse()
        assert np.array_equal(reassemble_field(blocks), field)

    def test_wrong_field_shape_rejected(self, rng):
        field = rng.normal(size=(32, 16))
        specs = plan_blocks("f", (64, 16), 8, 1024)
        with pytest.raises(ValueError):
            slice_field(field, specs[0])

    def test_incomplete_coverage_rejected(self, rng):
        field = rng.normal(size=(32, 8))
        specs = plan_blocks("f", field.shape, 8, 512)
        blocks = [(s, slice_field(field, s).copy()) for s in specs[:-1]]
        with pytest.raises(ValueError, match="cover"):
            reassemble_field(blocks)

    def test_empty_reassemble_rejected(self):
        with pytest.raises(ValueError):
            reassemble_field([])


class TestCompressedDataBuffer:
    def test_accumulates_until_full(self):
        buf = CompressedDataBuffer(max_bytes=10)
        assert buf.append(0, 4) == []
        assert buf.append(1, 4) == []
        units = buf.append(2, 4)  # 12 > 10 -> flush first two
        assert len(units) == 1
        assert units[0].block_ids == (0, 1)
        assert units[0].nbytes == 8

    def test_flush_drains_pending(self):
        buf = CompressedDataBuffer(max_bytes=100)
        buf.append(0, 10)
        buf.append(1, 20)
        units = buf.flush()
        assert len(units) == 1
        assert units[0].block_ids == (0, 1)
        assert buf.pending_bytes == 0

    def test_flush_empty_is_noop(self):
        assert CompressedDataBuffer(max_bytes=10).flush() == []

    def test_oversized_block_emitted_alone(self):
        buf = CompressedDataBuffer(max_bytes=10)
        buf.append(0, 3)
        units = buf.append(1, 50)
        assert [u.block_ids for u in units] == [(0,), (1,)]

    def test_disabled_buffer_passthrough(self):
        buf = CompressedDataBuffer(max_bytes=0)
        units = buf.append(0, 5)
        assert len(units) == 1
        assert buf.flush() == []

    def test_exact_fit_kept_until_overflow(self):
        buf = CompressedDataBuffer(max_bytes=10)
        assert buf.append(0, 10) != []  # equal to max -> alone

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            CompressedDataBuffer(max_bytes=10).append(0, -1)

    def test_all_blocks_accounted_for(self, rng):
        buf = CompressedDataBuffer(max_bytes=64)
        sizes = rng.integers(1, 40, size=50)
        emitted = []
        for i, size in enumerate(sizes):
            emitted.extend(buf.append(i, int(size)))
        emitted.extend(buf.flush())
        ids = [b for u in emitted for b in u.block_ids]
        assert sorted(ids) == list(range(50))
        assert sum(u.nbytes for u in emitted) == int(sizes.sum())

    def test_units_respect_capacity(self, rng):
        buf = CompressedDataBuffer(max_bytes=64)
        emitted = []
        for i in range(100):
            emitted.extend(buf.append(i, int(rng.integers(1, 30))))
        emitted.extend(buf.flush())
        for unit in emitted:
            assert unit.nbytes <= 64 or len(unit.blocks) == 1
