"""Equivalence of the two Huffman decode paths (table vs canonical walk)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import build_codebook, decode, encode
from repro.compression.huffman import (
    _TABLE_DECODE_MAX_LEN,
    _decode_table,
)


def _skewed_symbols(rng, n_symbols, count):
    probs = 1.0 / np.arange(1, n_symbols + 1)
    probs /= probs.sum()
    return rng.choice(n_symbols, size=count, p=probs).astype(np.uint16)


class TestDecoderPaths:
    def test_shallow_book_uses_table(self, rng):
        symbols = _skewed_symbols(rng, 40, 5000)
        hist = np.bincount(symbols, minlength=40)
        book = build_codebook(hist, max_length=_TABLE_DECODE_MAX_LEN)
        assert book.max_length <= _TABLE_DECODE_MAX_LEN
        data, nbits = encode(symbols, book)
        assert np.array_equal(
            decode(data, nbits, symbols.size, book), symbols
        )

    def test_paths_agree(self, rng):
        symbols = _skewed_symbols(rng, 100, 8000)
        hist = np.bincount(symbols, minlength=100)
        book = build_codebook(hist, max_length=10)
        data, nbits = encode(symbols, book)
        via_table = _decode_table(data, nbits, symbols.size, book)
        via_dispatch = decode(data, nbits, symbols.size, book)
        assert np.array_equal(via_table, via_dispatch)
        assert np.array_equal(via_table, symbols)

    def test_table_detects_truncation(self, rng):
        symbols = _skewed_symbols(rng, 20, 500)
        hist = np.bincount(symbols, minlength=20)
        book = build_codebook(hist, max_length=8)
        data, nbits = encode(symbols, book)
        with pytest.raises(ValueError):
            decode(data[: len(data) // 4], nbits, symbols.size, book)

    def test_table_detects_bit_count_mismatch(self, rng):
        symbols = _skewed_symbols(rng, 20, 500)
        hist = np.bincount(symbols, minlength=20)
        book = build_codebook(hist, max_length=8)
        data, nbits = encode(symbols, book)
        with pytest.raises(ValueError, match="decoded"):
            decode(data, nbits + 3, symbols.size, book)

    def test_single_symbol_book_table_path(self):
        book = build_codebook(np.array([0, 9, 0]))
        symbols = np.full(64, 1, dtype=np.uint16)
        data, nbits = encode(symbols, book)
        assert nbits == 64
        assert np.array_equal(decode(data, nbits, 64, book), symbols)


@given(
    seed=st.integers(min_value=0, max_value=2**16),
    n_symbols=st.integers(min_value=2, max_value=64),
    limit=st.integers(min_value=7, max_value=_TABLE_DECODE_MAX_LEN),
)
@settings(max_examples=40, deadline=None)
def test_limited_books_always_round_trip(seed, n_symbols, limit):
    if 2**limit < n_symbols:
        return
    rng = np.random.default_rng(seed)
    symbols = _skewed_symbols(rng, n_symbols, 400)
    hist = np.bincount(symbols, minlength=n_symbols)
    book = build_codebook(hist, max_length=limit)
    data, nbits = encode(symbols, book)
    assert np.array_equal(decode(data, nbits, 400, book), symbols)
