"""The vectorized encode path, canonical-codebook serialization, and the
multi-codec registry.

Covers the PR-9 fixes: bounded-slab encoding (peak-memory regression),
validated codebook deserialization (truncation/corruption), estimator
agreement with the real encoder (``nbits == sum(lengths[symbols])``
including escape/sentinel accounting), the dense-table/canonical-walk
decode crossover at code lengths 12 and 13, and cross-backend behaviour
on adversarial inputs (all-outlier, single symbol, empty, constant).
"""

import base64
import json
import struct
import tracemalloc
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import (
    CODEBOOK_KIND_RAW,
    CODEBOOK_KIND_RLE,
    CompressedBlock,
    SZCompressor,
    available_backends,
    build_codebook,
    codebook_blob_kind,
    codebook_from_bytes,
    codebook_to_bytes,
    decode,
    encode,
    encode_reference,
    estimate_encoded_bits,
    get_backend,
    pack_bits,
    unpack_bits,
)
from repro.compression import huffman
from repro.compression.kernels import FORMAT_HUFFMAN
from repro.compression.kernels.base import DEFAULT_CHUNK_SIZE

_DATA_DIR = Path(__file__).parent / "data"


def _skewed_symbols(rng, n_symbols, count):
    probs = 1.0 / np.arange(1, n_symbols + 1)
    probs /= probs.sum()
    return rng.choice(n_symbols, size=count, p=probs).astype(np.uint16)


def _book_with_max_length(target_len):
    """A codebook whose deepest code has exactly ``target_len`` bits
    (Fibonacci frequencies grow tree depth one level per symbol)."""
    freqs = [1, 1]
    while True:
        book = build_codebook(np.array(freqs, dtype=np.int64))
        if book.max_length == target_len:
            return book
        if book.max_length > target_len:
            raise AssertionError("overshot the target depth")
        freqs.append(freqs[-1] + freqs[-2])


class TestEncodeBitIdentical:
    def test_matches_reference_across_slab_boundaries(self, rng):
        symbols = _skewed_symbols(rng, 90, 7000)
        book = build_codebook(np.bincount(symbols, minlength=90))
        ref_data, ref_bits = encode_reference(symbols, book)
        for slab in (64, 1000, 4096, 1 << 18):
            data, nbits, _ = huffman.encode_with_offsets(
                symbols, book, chunk_size=0, slab=slab
            )
            assert (data, nbits) == (ref_data, ref_bits), slab

    def test_uncoded_symbol_same_error_both_paths(self):
        book = build_codebook(np.array([5, 0, 5]))
        bad = np.array([0, 1, 2], dtype=np.uint16)
        with pytest.raises(ValueError, match="symbol 1 has no code"):
            encode(bad, book)
        with pytest.raises(ValueError, match="symbol 1 has no code"):
            encode_reference(bad, book)

    def test_single_symbol_stream(self):
        book = build_codebook(np.array([3, 2]))
        data, nbits = encode(np.array([1], dtype=np.uint16), book)
        assert nbits == 1 and len(data) == 1
        assert np.array_equal(
            decode(data, nbits, 1, book), np.array([1], dtype=np.uint16)
        )

    def test_empty_stream(self):
        book = build_codebook(np.array([3, 2]))
        assert encode(np.zeros(0, dtype=np.uint16), book) == (b"", 0)

    def test_deep_book_falls_back_to_reference(self):
        # Books deeper than the 25-bit placement window can't take the
        # vectorized path; the fallback must stay bit-identical.
        book = _book_with_max_length(26)
        rng = np.random.default_rng(5)
        present = np.flatnonzero(book.lengths > 0)
        symbols = rng.choice(present, size=500).astype(np.uint16)
        ref = encode_reference(symbols, book)
        data, nbits, offsets = huffman.encode_with_offsets(
            symbols, book, chunk_size=64
        )
        assert (data, nbits) == ref
        lens = book.lengths[symbols].astype(np.int64)
        starts = np.concatenate(([0], np.cumsum(lens)))
        assert np.array_equal(
            offsets.astype(np.int64), starts[::64][: offsets.size]
        )


class TestEncodeMemoryBound:
    def test_peak_memory_stays_bounded_on_64mib_stream(self):
        """Regression for the dense (n, max_len) bit-matrix encoder: a
        64 MiB symbol stream must encode within a small multiple of the
        input size, not ~10-15x of it."""
        n = 32 * 1024 * 1024  # uint16 -> 64 MiB
        rng = np.random.default_rng(11)
        symbols = rng.choice(
            np.arange(16), size=n, p=np.arange(16, 0, -1) / 136.0
        ).astype(np.uint16)
        book = build_codebook(np.bincount(symbols, minlength=16))
        tracemalloc.start()
        stream = get_backend("numpy").encode(
            symbols, book, chunk_size=DEFAULT_CHUNK_SIZE
        )
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        # Output buffer + offsets + a few slab-sized temporaries.  The
        # old encoder's shifts/valid/bits matrices alone were
        # ~10x symbols.nbytes (int64 broadcast over max_len columns).
        assert stream.nbits > 0
        assert peak < 3 * symbols.nbytes, (
            f"peak {peak / 2**20:.0f} MiB for a "
            f"{symbols.nbytes / 2**20:.0f} MiB input"
        )


class TestPackBits:
    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_random_widths(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(0, 500))
        widths = rng.integers(0, 26, size=n)
        values = rng.integers(0, 1 << 25, size=n) & (
            (1 << np.maximum(widths, 1)) - 1
        )
        values[widths == 0] = 0
        data, nbits = pack_bits(values, widths, slab=97)
        assert nbits == int(widths.sum())
        assert np.array_equal(unpack_bits(data, widths), values)

    def test_too_wide_rejected(self):
        with pytest.raises(ValueError, match="widths up to 25"):
            pack_bits(np.array([1]), np.array([26]))
        with pytest.raises(ValueError, match="widths up to 25"):
            unpack_bits(b"\x00\x00\x00\x00", np.array([26]))

    def test_truncated_stream_rejected(self):
        with pytest.raises(ValueError, match="cannot hold"):
            unpack_bits(b"\x00", np.array([10, 10]))


class TestCodebookSerialization:
    def _typical_book(self):
        hist = (
            np.exp(-0.5 * ((np.arange(257) - 128) / 3.0) ** 2) * 1e6
        ).astype(np.int64)
        return build_codebook(hist, force_symbols=(256,), max_length=12)

    def test_rle_much_smaller_on_typical_books(self):
        book = self._typical_book()
        rle = codebook_to_bytes(book, kind=CODEBOOK_KIND_RLE)
        raw = codebook_to_bytes(book, kind=CODEBOOK_KIND_RAW)
        assert len(rle) < len(raw) / 2
        assert codebook_blob_kind(codebook_to_bytes(book)) == (
            CODEBOOK_KIND_RLE
        )

    def test_both_kinds_roundtrip(self):
        book = self._typical_book()
        for kind in (CODEBOOK_KIND_RAW, CODEBOOK_KIND_RLE):
            restored = codebook_from_bytes(codebook_to_bytes(book, kind))
            assert np.array_equal(restored.lengths, book.lengths)
            assert np.array_equal(restored.codes, book.codes)

    def test_adaptive_picks_smaller(self):
        # A book whose lengths alternate has no runs to exploit.
        jagged = build_codebook(
            np.array([1 << (i % 7) for i in range(64)], dtype=np.int64)
        )
        auto = codebook_to_bytes(jagged)
        rle = codebook_to_bytes(jagged, kind=CODEBOOK_KIND_RLE)
        raw = codebook_to_bytes(jagged, kind=CODEBOOK_KIND_RAW)
        assert len(auto) == min(len(rle), len(raw))

    def test_long_run_split_across_uint16(self):
        lengths = np.zeros(200_000, dtype=np.uint8)
        lengths[0] = 1
        lengths[1] = 1
        book = huffman.Codebook(
            lengths=lengths, codes=huffman._canonical_codes(lengths)
        )
        blob = codebook_to_bytes(book, kind=CODEBOOK_KIND_RLE)
        restored = codebook_from_bytes(blob)
        assert np.array_equal(restored.lengths, lengths)


class TestCodebookCorruption:
    """`codebook_from_bytes` used to trust the declared symbol count; a
    truncated blob silently produced a shorter lengths array."""

    def test_truncated_raw_blob_named(self):
        book = build_codebook(np.arange(1, 40))
        blob = codebook_to_bytes(book, kind=CODEBOOK_KIND_RAW)
        with pytest.raises(ValueError, match="truncated codebook blob"):
            codebook_from_bytes(blob[:-5])

    def test_oversized_raw_blob_named(self):
        book = build_codebook(np.arange(1, 40))
        blob = codebook_to_bytes(book, kind=CODEBOOK_KIND_RAW)
        with pytest.raises(ValueError, match="truncated codebook blob"):
            codebook_from_bytes(blob + b"\x00\x00")

    def test_tiny_blob_named(self):
        with pytest.raises(ValueError, match="codebook header"):
            codebook_from_bytes(b"\x02")

    def test_truncated_rle_blob_named(self):
        book = build_codebook(np.arange(1, 40))
        blob = codebook_to_bytes(book, kind=CODEBOOK_KIND_RLE)
        for cut in range(4, len(blob) - 1, 3):
            with pytest.raises(ValueError, match="codebook blob"):
                codebook_from_bytes(blob[:cut])

    def test_rle_run_sum_mismatch_named(self):
        book = build_codebook(np.arange(1, 10))
        blob = bytearray(codebook_to_bytes(book, kind=CODEBOOK_KIND_RLE))
        # Inflate the declared symbol count past the run coverage.
        declared = struct.unpack_from("<I", blob, 4)[0]
        struct.pack_into("<I", blob, 4, declared + 7)
        with pytest.raises(ValueError, match="runs cover"):
            codebook_from_bytes(bytes(blob))

    def test_zero_symbols_rejected(self):
        with pytest.raises(ValueError, match="zero symbols"):
            codebook_from_bytes(struct.pack("<I", 0))
        with pytest.raises(ValueError, match="zero symbols"):
            codebook_from_bytes(b"RCB2" + struct.pack("<II", 0, 0))

    def test_kraft_violation_rejected(self):
        # Five length-1 codes cannot coexist in any prefix code.
        blob = struct.pack("<I", 5) + bytes([1, 1, 1, 1, 1])
        with pytest.raises(ValueError, match="Kraft"):
            codebook_from_bytes(blob)

    def test_absurd_rle_length_rejected(self):
        blob = (
            b"RCB2"
            + struct.pack("<II", 2, 2)
            + struct.pack("<BH", 200, 1)
            + struct.pack("<BH", 200, 1)
        )
        with pytest.raises(ValueError, match="exceeds 63"):
            codebook_from_bytes(blob)

    def test_corrupt_blob_inside_block_surfaces_named_error(self, rng):
        field = np.cumsum(rng.normal(size=(12, 12)), axis=0)
        block = SZCompressor().compress(field, 0.05)
        block.codebook_blob = block.codebook_blob[:-3]
        with pytest.raises(ValueError, match="codebook blob"):
            SZCompressor().decompress(block)


@given(
    seed=st.integers(min_value=0, max_value=2**16),
    n_symbols=st.integers(min_value=2, max_value=300),
    count=st.integers(min_value=0, max_value=3000),
)
@settings(max_examples=60, deadline=None)
def test_nbits_matches_length_sum_property(seed, n_symbols, count):
    """The encoder's declared nbits must equal sum(lengths[symbols]) —
    and the estimator must agree exactly on the stream's histogram."""
    rng = np.random.default_rng(seed)
    symbols = _skewed_symbols(rng, n_symbols, count)
    hist = np.bincount(symbols, minlength=n_symbols)
    book = build_codebook(hist, max_length=16)
    data, nbits = encode(symbols, book)
    assert nbits == int(book.lengths[symbols].astype(np.int64).sum())
    est_bits, escapes = estimate_encoded_bits(hist, book)
    assert (est_bits, escapes) == (nbits, 0)


@given(seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=40, deadline=None)
def test_estimator_accounts_for_sentinel_rerouting(seed):
    """Escapes rerouted to the sentinel pay the sentinel's code length;
    the estimator with ``sentinel=`` must match the real encoder."""
    rng = np.random.default_rng(seed)
    sentinel = 8
    # A book trained without symbols 5..7 so they escape.
    train = np.zeros(9, dtype=np.int64)
    train[:5] = rng.integers(1, 100, size=5)
    book = build_codebook(train, force_symbols=(sentinel,))
    symbols = rng.integers(0, 9, size=500).astype(np.uint16)
    hist = np.bincount(symbols, minlength=9)
    bits_plain, escapes = estimate_encoded_bits(hist, book)
    bits_sent, escapes_sent = estimate_encoded_bits(
        hist, book, sentinel=sentinel
    )
    assert escapes_sent == escapes
    # What encode actually emits once escapes are rerouted to sentinel:
    rerouted = symbols.copy()
    rerouted[book.lengths[rerouted] == 0] = sentinel
    _, nbits = encode(rerouted, book)
    assert bits_sent == nbits
    if escapes:
        assert bits_plain < bits_sent


class TestDecodeCrossover:
    """Round-trips pinned at the dense-table/canonical-walk boundary."""

    @pytest.mark.parametrize("depth", [12, 13])
    def test_roundtrip_at_depth(self, depth, rng):
        book = _book_with_max_length(depth)
        assert (depth <= huffman.TABLE_DECODE_MAX_LEN) == (depth == 12)
        present = np.flatnonzero(book.lengths > 0)
        probs = 2.0 ** -book.lengths[present].astype(np.float64)
        probs /= probs.sum()
        symbols = rng.choice(present, size=4000, p=probs).astype(np.uint16)
        data, nbits = encode(symbols, book)
        assert np.array_equal(decode(data, nbits, symbols.size, book), symbols)
        # The numpy backend handles both depths (window limit is 16).
        stream = get_backend("numpy").encode(symbols, book, 256)
        out = get_backend("numpy").decode(
            stream.data, stream.nbits, symbols.size, book, 256,
            stream.chunk_offsets,
        )
        assert np.array_equal(out, symbols)

    @pytest.mark.parametrize("depth", [12, 13])
    def test_corrupt_stream_rejected_at_depth(self, depth):
        book = _book_with_max_length(depth)
        present = np.flatnonzero(book.lengths > 0)
        symbols = np.repeat(present[-3:], 50).astype(np.uint16)
        data, nbits = encode(symbols, book)
        with pytest.raises(ValueError):
            decode(data, nbits + 40, symbols.size + 5, book)


class TestAdversarialCrossBackend:
    """Every backend must round-trip the pathological block shapes."""

    def _roundtrip(self, field, bound, backend):
        comp = SZCompressor(backend=backend)
        block = comp.compress(field, bound)
        # Serialize through bytes to exercise the v3 header too.
        restored = CompressedBlock.from_bytes(
            block.to_bytes(), expected_crc32c=block.checksum()
        )
        recon = comp.decompress(restored)
        assert np.max(np.abs(recon - field), initial=0.0) <= bound * (
            1 + 1e-9
        )
        return block

    @pytest.mark.parametrize("backend", ["pure", "numpy", "deflate", "zlib"])
    def test_all_outlier_block(self, backend, rng):
        # Huge spread + tiny bound: every delta overflows the radius.
        field = rng.normal(0, 1e6, size=(12, 12)) * 1e3
        block = self._roundtrip(field, 0.5, backend)
        assert block.num_outliers > 0.9 * field.size

    @pytest.mark.parametrize("backend", ["pure", "numpy", "deflate", "zlib"])
    def test_constant_field(self, backend):
        field = np.full((16, 16), 3.25)
        self._roundtrip(field, 0.01, backend)

    @pytest.mark.parametrize("backend", ["pure", "numpy", "deflate", "zlib"])
    def test_single_value(self, backend):
        self._roundtrip(np.array([[42.0]]), 0.1, backend)

    @pytest.mark.parametrize("backend", ["pure", "numpy", "deflate", "zlib"])
    def test_empty_field(self, backend):
        self._roundtrip(np.zeros((0,), dtype=np.float64), 0.1, backend)

    def test_huffman_backends_bit_identical_on_adversarial(self, rng):
        fields = [
            np.full((16, 16), 3.25),
            np.array([[42.0]]),
            np.zeros((0,), dtype=np.float64),
            rng.normal(0, 1e6, size=(12, 12)) * 1e3,
        ]
        for field in fields:
            blobs = [
                SZCompressor(backend=name).compress(field, 0.5).to_bytes()
                for name in ("pure", "numpy")
            ]
            assert blobs[0] == blobs[1]

    def test_every_backend_decodes_every_backends_blocks(self, rng):
        field = np.cumsum(rng.normal(size=(14, 14)), axis=0)
        for writer in available_backends():
            blob = SZCompressor(backend=writer).compress(field, 0.05).to_bytes()
            block = CompressedBlock.from_bytes(blob)
            for reader in available_backends():
                recon = SZCompressor(backend=reader).decompress(block)
                assert np.max(np.abs(recon - field)) <= 0.05 * (
                    1 + 1e-9
                ), (writer, reader)


class TestGoldenV2Blob:
    def test_golden_v2_blob_still_decompresses(self):
        """A block written by the pre-v3 (PR 4-8) codec must keep
        decoding bit-exactly on every backend."""
        golden = json.loads(
            (_DATA_DIR / "block_v2_golden.json").read_text()
        )
        blob = base64.b64decode(golden["blob_b64"])
        assert blob[4] == 2  # genuinely a v2 fixture
        expected = np.frombuffer(
            base64.b64decode(golden["recon_b64"]), dtype=np.float64
        ).reshape(golden["shape"])
        block = CompressedBlock.from_bytes(blob)
        assert block.codec == FORMAT_HUFFMAN
        assert block.chunk_offsets is not None
        for name in available_backends():
            recon = SZCompressor(backend=name).decompress(block)
            assert np.array_equal(recon, expected), name
