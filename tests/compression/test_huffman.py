"""Tests for the canonical Huffman codec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import (
    build_codebook,
    codebook_from_bytes,
    codebook_to_bytes,
    decode,
    encode,
    estimate_encoded_bits,
)


def _round_trip(symbols: np.ndarray, num_symbols: int) -> np.ndarray:
    hist = np.bincount(symbols, minlength=num_symbols)
    book = build_codebook(hist)
    data, nbits = encode(symbols, book)
    return decode(data, nbits, symbols.size, book)


class TestCodebookConstruction:
    def test_two_symbols_get_one_bit(self):
        book = build_codebook(np.array([5, 5]))
        assert list(book.lengths) == [1, 1]
        assert sorted(book.codes[:2]) == [0, 1]

    def test_single_symbol_gets_one_bit(self):
        book = build_codebook(np.array([0, 7, 0]))
        assert book.lengths[1] == 1
        assert book.lengths[0] == 0

    def test_empty_histogram(self):
        book = build_codebook(np.zeros(4, dtype=np.int64))
        assert book.max_length == 0

    def test_skewed_distribution_shorter_codes_for_frequent(self):
        hist = np.array([1000, 100, 10, 1])
        book = build_codebook(hist)
        assert book.lengths[0] <= book.lengths[1] <= book.lengths[3]

    def test_kraft_inequality(self, rng):
        hist = rng.integers(0, 1000, size=257)
        book = build_codebook(hist)
        lengths = book.lengths[book.lengths > 0].astype(np.float64)
        assert np.sum(2.0 ** -lengths) <= 1.0 + 1e-12

    def test_force_symbols(self):
        hist = np.array([10, 0, 0])
        book = build_codebook(hist, force_symbols=(2,))
        assert book.lengths[2] > 0
        assert book.lengths[1] == 0

    def test_canonical_codes_are_prefix_free(self, rng):
        hist = rng.integers(1, 50, size=40)
        book = build_codebook(hist)
        words = [
            format(int(book.codes[s]), f"0{int(book.lengths[s])}b")
            for s in range(40)
        ]
        for i, a in enumerate(words):
            for j, b in enumerate(words):
                if i != j:
                    assert not b.startswith(a)

    def test_rejects_2d_frequencies(self):
        with pytest.raises(ValueError):
            build_codebook(np.ones((2, 2)))


class TestRoundTrip:
    def test_simple(self):
        symbols = np.array([0, 1, 2, 1, 0, 0, 3], dtype=np.uint16)
        assert np.array_equal(_round_trip(symbols, 4), symbols)

    def test_single_distinct_symbol(self):
        symbols = np.full(100, 3, dtype=np.uint16)
        assert np.array_equal(_round_trip(symbols, 8), symbols)

    def test_large_skewed(self, rng):
        symbols = np.minimum(
            rng.geometric(0.3, size=50_000) - 1, 256
        ).astype(np.uint16)
        assert np.array_equal(_round_trip(symbols, 257), symbols)

    def test_uniform_alphabet(self, rng):
        symbols = rng.integers(0, 257, size=10_000).astype(np.uint16)
        assert np.array_equal(_round_trip(symbols, 257), symbols)

    def test_empty(self):
        book = build_codebook(np.array([1, 1]))
        data, nbits = encode(np.zeros(0, dtype=np.uint16), book)
        assert data == b""
        assert nbits == 0
        assert decode(data, 0, 0, book).size == 0

    def test_encode_unknown_symbol_raises(self):
        book = build_codebook(np.array([1, 1, 0]))
        with pytest.raises(ValueError, match="no code"):
            encode(np.array([2], dtype=np.uint16), book)

    def test_bit_count_matches_lengths(self, rng):
        symbols = rng.integers(0, 16, size=1000).astype(np.uint16)
        hist = np.bincount(symbols, minlength=16)
        book = build_codebook(hist)
        _, nbits = encode(symbols, book)
        assert nbits == int(book.lengths[symbols].astype(np.int64).sum())

    def test_compresses_skewed_data(self, rng):
        symbols = np.minimum(rng.geometric(0.7, size=10_000) - 1, 15).astype(
            np.uint16
        )
        hist = np.bincount(symbols, minlength=16)
        book = build_codebook(hist)
        data, _ = encode(symbols, book)
        assert len(data) < symbols.size  # well under 8 bits/symbol


class TestSerialization:
    def test_round_trip(self, rng):
        hist = rng.integers(0, 100, size=257)
        book = build_codebook(hist)
        restored = codebook_from_bytes(codebook_to_bytes(book))
        assert np.array_equal(restored.lengths, book.lengths)
        assert np.array_equal(restored.codes, book.codes)

    def test_restored_book_decodes(self, rng):
        symbols = rng.integers(0, 50, size=2000).astype(np.uint16)
        hist = np.bincount(symbols, minlength=50)
        book = build_codebook(hist)
        data, nbits = encode(symbols, book)
        restored = codebook_from_bytes(codebook_to_bytes(book))
        assert np.array_equal(
            decode(data, nbits, symbols.size, restored), symbols
        )


class TestEstimate:
    def test_estimate_matches_actual_bits(self, rng):
        symbols = rng.integers(0, 32, size=5000).astype(np.uint16)
        hist = np.bincount(symbols, minlength=32)
        book = build_codebook(hist)
        _, nbits = encode(symbols, book)
        estimated, escapes = estimate_encoded_bits(hist, book)
        assert estimated == nbits
        assert escapes == 0

    def test_escapes_counted(self):
        book = build_codebook(np.array([10, 10, 0]))
        _, escapes = estimate_encoded_bits(np.array([5, 5, 7]), book)
        assert escapes == 7

    def test_histogram_longer_than_book(self):
        book = build_codebook(np.array([1, 1]))
        bits, escapes = estimate_encoded_bits(np.array([1, 1, 4, 4]), book)
        assert escapes == 8


@given(
    st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=500)
)
@settings(max_examples=60, deadline=None)
def test_huffman_round_trip_property(symbol_list):
    symbols = np.array(symbol_list, dtype=np.uint16)
    hist = np.bincount(symbols, minlength=31)
    book = build_codebook(hist)
    data, nbits = encode(symbols, book)
    assert np.array_equal(decode(data, nbits, symbols.size, book), symbols)
