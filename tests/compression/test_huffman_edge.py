"""Edge-case Huffman tests: deep trees, pathological distributions, and
consistency between the encoder's table and the decoder's canonical walk."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import (
    build_codebook,
    codebook_from_bytes,
    codebook_to_bytes,
    decode,
    encode,
)


def _fibonacci_freqs(n: int) -> np.ndarray:
    """Fibonacci frequencies build the deepest possible Huffman tree."""
    freqs = [1, 1]
    while len(freqs) < n:
        freqs.append(freqs[-1] + freqs[-2])
    return np.array(freqs[:n], dtype=np.int64)


class TestDeepTrees:
    def test_fibonacci_tree_depth(self):
        book = build_codebook(_fibonacci_freqs(24))
        # Fibonacci weights force depth ~ n-1.
        assert book.max_length >= 20

    def test_deep_tree_round_trip(self, rng):
        freqs = _fibonacci_freqs(24)
        book = build_codebook(freqs)
        # Sample symbols proportional to the pathological weights.
        probs = freqs / freqs.sum()
        symbols = rng.choice(24, size=5000, p=probs).astype(np.uint16)
        data, nbits = encode(symbols, book)
        assert np.array_equal(
            decode(data, nbits, symbols.size, book), symbols
        )

    def test_deep_tree_survives_serialization(self, rng):
        book = build_codebook(_fibonacci_freqs(30))
        restored = codebook_from_bytes(codebook_to_bytes(book))
        assert restored.max_length == book.max_length
        assert np.array_equal(restored.codes, book.codes)

    def test_rarest_symbol_longest_code(self):
        freqs = _fibonacci_freqs(16)
        book = build_codebook(freqs)
        assert book.lengths[0] == book.max_length  # freq 1 symbol
        assert book.lengths[-1] == min(book.lengths[book.lengths > 0])


class TestDistributions:
    def test_uniform_distribution_near_log2(self, rng):
        n = 64
        book = build_codebook(np.full(n, 100))
        assert set(np.unique(book.lengths)) == {6}  # exactly log2(64)

    def test_power_of_two_plus_one(self):
        book = build_codebook(np.full(65, 1))
        assert book.max_length == 7
        assert int(book.lengths.min()) >= 6

    def test_one_dominant_symbol(self, rng):
        freqs = np.ones(32, dtype=np.int64)
        freqs[7] = 10**9
        book = build_codebook(freqs)
        assert book.lengths[7] == 1
        symbols = np.full(1000, 7, dtype=np.uint16)
        data, nbits = encode(symbols, book)
        assert nbits == 1000

    def test_two_symbol_alternation(self):
        book = build_codebook(np.array([500, 500]))
        symbols = np.tile(
            np.array([0, 1], dtype=np.uint16), 500
        )
        data, nbits = encode(symbols, book)
        assert nbits == 1000
        assert np.array_equal(
            decode(data, nbits, 1000, book), symbols
        )

    def test_byte_boundary_exactness(self, rng):
        # Streams whose bit counts are not byte multiples must decode
        # exactly (padding bits ignored).
        book = build_codebook(np.array([3, 2, 1]))
        for count in range(1, 24):
            symbols = rng.integers(0, 3, size=count).astype(np.uint16)
            data, nbits = encode(symbols, book)
            assert np.array_equal(
                decode(data, nbits, count, book), symbols
            )

    def test_declared_bits_mismatch_detected(self, rng):
        symbols = rng.integers(0, 8, size=100).astype(np.uint16)
        hist = np.bincount(symbols, minlength=8)
        book = build_codebook(hist)
        data, nbits = encode(symbols, book)
        with pytest.raises(ValueError, match="decoded"):
            decode(data, nbits + 5, symbols.size, book)


@given(
    weights=st.lists(
        st.integers(min_value=1, max_value=10**6), min_size=2, max_size=64
    ),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=60, deadline=None)
def test_arbitrary_weights_round_trip(weights, seed):
    freqs = np.array(weights, dtype=np.int64)
    book = build_codebook(freqs)
    rng = np.random.default_rng(seed)
    symbols = rng.integers(0, len(weights), size=300).astype(np.uint16)
    data, nbits = encode(symbols, book)
    assert np.array_equal(decode(data, nbits, 300, book), symbols)
    # Kraft equality for a complete code over >= 2 symbols.
    lengths = book.lengths[book.lengths > 0].astype(float)
    assert np.sum(2.0**-lengths) == pytest.approx(1.0)


class TestLengthLimitedCodes:
    def test_depth_bounded(self):
        freqs = _fibonacci_freqs(24)
        book = build_codebook(freqs, max_length=12)
        assert book.max_length <= 12

    def test_kraft_equality_preserved(self):
        freqs = _fibonacci_freqs(30)
        book = build_codebook(freqs, max_length=10)
        lengths = book.lengths[book.lengths > 0].astype(float)
        assert np.sum(2.0**-lengths) == pytest.approx(1.0)

    def test_cost_overhead_tiny(self):
        freqs = _fibonacci_freqs(24)
        natural = build_codebook(freqs)
        limited = build_codebook(freqs, max_length=12)
        cost_nat = int(np.sum(freqs * natural.lengths[:24].astype(np.int64)))
        cost_lim = int(np.sum(freqs * limited.lengths[:24].astype(np.int64)))
        assert cost_lim >= cost_nat  # natural Huffman is optimal
        assert cost_lim < cost_nat * 1.02

    def test_limited_book_round_trips(self, rng):
        freqs = _fibonacci_freqs(24)
        book = build_codebook(freqs, max_length=9)
        probs = freqs / freqs.sum()
        symbols = rng.choice(24, size=4000, p=probs).astype(np.uint16)
        data, nbits = encode(symbols, book)
        assert np.array_equal(
            decode(data, nbits, symbols.size, book), symbols
        )

    def test_noop_when_natural_tree_fits(self, rng):
        freqs = rng.integers(50, 100, size=16)
        natural = build_codebook(freqs)
        limited = build_codebook(freqs, max_length=16)
        assert np.array_equal(natural.lengths, limited.lengths)

    def test_infeasible_bound_rejected(self):
        with pytest.raises(ValueError, match="cannot encode"):
            build_codebook(np.ones(32, dtype=np.int64), max_length=4)

    def test_exact_bound_gives_fixed_length_code(self):
        # 2^L symbols at depth L: the only feasible code is fixed-length.
        freqs = _fibonacci_freqs(16)
        book = build_codebook(freqs, max_length=4)
        assert set(book.lengths[book.lengths > 0].tolist()) == {4}

    def test_force_symbols_compose_with_limit(self):
        freqs = _fibonacci_freqs(20)
        freqs[5] = 0
        book = build_codebook(freqs, force_symbols=(5,), max_length=10)
        assert book.lengths[5] > 0
        assert book.max_length <= 10
