"""Codec kernel backends: cross-backend equivalence, the chunked block
format versions, and the silent-corruption fixes that shipped with them."""

import base64
import json
import struct
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import (
    CompressedBlock,
    SZCompressor,
    available_backends,
    build_codebook,
    decode,
    encode,
    get_backend,
    prequantize,
    resolve_backend,
)
from repro.compression.kernels import (
    BACKEND_ENV_VAR,
    DEFAULT_CHUNK_SIZE,
    NumpyBackend,
    PureBackend,
)

_DATA_DIR = Path(__file__).parent / "data"


def _skewed_symbols(rng, n_symbols, count):
    probs = 1.0 / np.arange(1, n_symbols + 1)
    probs /= probs.sum()
    return rng.choice(n_symbols, size=count, p=probs).astype(np.uint16)


def _smooth_field(rng, shape=(16, 16, 16), scale=100.0):
    base = rng.normal(0, 1, size=shape)
    for axis in range(len(shape)):
        base = np.cumsum(base, axis=axis)
    return (base * scale / max(1.0, np.abs(base).max())).astype(np.float64)


def _huffman_backends():
    """Backends sharing the chunked canonical-Huffman bit format."""
    from repro.compression.kernels import FORMAT_HUFFMAN

    return tuple(
        name
        for name in available_backends()
        if get_backend(name).format_id == FORMAT_HUFFMAN
    )


class TestBackendRegistry:
    def test_available(self):
        assert available_backends() == ("deflate", "numpy", "pure", "zlib")

    def test_get_backend_instances(self):
        assert isinstance(get_backend("pure"), PureBackend)
        assert isinstance(get_backend("numpy"), NumpyBackend)
        assert get_backend("numpy") is get_backend("numpy")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown codec backend"):
            get_backend("cuda")

    def test_resolve_default_is_numpy(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert resolve_backend().name == "numpy"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "pure")
        assert resolve_backend().name == "pure"
        assert SZCompressor().backend.name == "pure"

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "pure")
        assert resolve_backend("numpy").name == "numpy"

    def test_instance_passes_through(self):
        backend = PureBackend()
        assert resolve_backend(backend) is backend

    def test_compressor_validates_chunk_size(self):
        with pytest.raises(ValueError, match="chunk_size"):
            SZCompressor(chunk_size=0)


class TestChunkedEncode:
    def test_offsets_index_the_stream(self, rng):
        symbols = _skewed_symbols(rng, 50, 3000)
        book = build_codebook(np.bincount(symbols, minlength=50))
        stream = get_backend("numpy").encode(symbols, book, chunk_size=128)
        # Stream bytes identical to the unchunked encoder.
        data, nbits = encode(symbols, book)
        assert stream.data == data and stream.nbits == nbits
        # Offsets are the cumulative code lengths at chunk starts.
        lens = book.lengths[symbols].astype(np.int64)
        starts = np.concatenate(([0], np.cumsum(lens)))[::128][:24]
        assert np.array_equal(
            stream.chunk_offsets.astype(np.int64), starts
        )

    def test_empty_stream(self):
        book = build_codebook(np.ones(4))
        stream = get_backend("numpy").encode(
            np.zeros(0, dtype=np.uint16), book
        )
        assert stream.nbits == 0 and stream.num_chunks == 0


class TestCrossBackendEquivalence:
    @pytest.mark.parametrize("chunk_size", [1, 3, 64, 256, 5000])
    def test_decoders_agree(self, rng, chunk_size):
        symbols = _skewed_symbols(rng, 120, 4000)
        book = build_codebook(
            np.bincount(symbols, minlength=120), max_length=12
        )
        stream = get_backend("pure").encode(symbols, book, chunk_size)
        results = {
            name: get_backend(name).decode(
                stream.data,
                stream.nbits,
                symbols.size,
                book,
                stream.chunk_size,
                stream.chunk_offsets,
            )
            for name in _huffman_backends()
        }
        for name, out in results.items():
            assert np.array_equal(out, symbols), name

    def test_blocks_bit_identical_across_backends(self, rng):
        field = _smooth_field(rng)
        blobs = {
            name: SZCompressor(backend=name).compress(field, 0.05).to_bytes()
            for name in available_backends()
        }
        assert blobs["pure"] == blobs["numpy"]

    def test_cross_backend_decompress(self, rng):
        field = _smooth_field(rng)
        block = SZCompressor(backend="pure").compress(field, 0.05)
        recon = SZCompressor(backend="numpy").decompress(block)
        assert np.max(np.abs(field - recon)) <= 0.05 * (1 + 1e-9)

    def test_deep_codebook_falls_back(self, rng):
        # Fibonacci weights force codes deeper than the numpy backend's
        # 16-bit window; it must fall back to the reference walk.
        freqs = [1, 1]
        while len(freqs) < 24:
            freqs.append(freqs[-1] + freqs[-2])
        book = build_codebook(np.array(freqs, dtype=np.int64))
        assert book.max_length > NumpyBackend.decode_max_length
        probs = np.array(freqs) / np.sum(freqs)
        symbols = rng.choice(24, size=2000, p=probs).astype(np.uint16)
        stream = get_backend("numpy").encode(symbols, book, 256)
        out = get_backend("numpy").decode(
            stream.data,
            stream.nbits,
            2000,
            book,
            256,
            stream.chunk_offsets,
        )
        assert np.array_equal(out, symbols)


@given(
    seed=st.integers(min_value=0, max_value=2**16),
    n_symbols=st.integers(min_value=2, max_value=257),
    count=st.integers(min_value=0, max_value=2000),
    chunk_size=st.sampled_from([1, 7, 64, 256, 1024]),
)
@settings(max_examples=60, deadline=None)
def test_backend_equivalence_property(seed, n_symbols, count, chunk_size):
    """pure and numpy agree bit-for-bit on random codebooks and streams."""
    rng = np.random.default_rng(seed)
    symbols = _skewed_symbols(rng, n_symbols, count)
    hist = np.bincount(symbols, minlength=n_symbols)
    book = build_codebook(hist, force_symbols=(0,), max_length=12)
    stream = get_backend("pure").encode(symbols, book, chunk_size)
    pure = get_backend("pure").decode(
        stream.data, stream.nbits, count, book, chunk_size,
        stream.chunk_offsets,
    )
    vec = get_backend("numpy").decode(
        stream.data, stream.nbits, count, book, chunk_size,
        stream.chunk_offsets,
    )
    assert np.array_equal(pure, vec)
    assert np.array_equal(pure, symbols)


class TestCorruptionDetection:
    @pytest.fixture
    def stream(self, rng):
        symbols = _skewed_symbols(rng, 30, 2000)
        book = build_codebook(
            np.bincount(symbols, minlength=30), max_length=10
        )
        return symbols, book, get_backend("pure").encode(symbols, book, 256)

    @pytest.mark.parametrize("name", ["pure", "numpy"])
    def test_truncated_data_rejected(self, stream, name):
        symbols, book, enc = stream
        with pytest.raises(ValueError):
            get_backend(name).decode(
                enc.data[: len(enc.data) // 4],
                enc.nbits,
                symbols.size,
                book,
                256,
                enc.chunk_offsets,
            )

    @pytest.mark.parametrize("name", ["pure", "numpy"])
    def test_wrong_chunk_count_rejected(self, stream, name):
        symbols, book, enc = stream
        with pytest.raises(ValueError, match="chunk offsets"):
            get_backend(name).decode(
                enc.data,
                enc.nbits,
                symbols.size,
                book,
                256,
                enc.chunk_offsets[:-1],
            )

    def test_shifted_offsets_rejected(self, stream):
        symbols, book, enc = stream
        bad = enc.chunk_offsets.astype(np.int64) + 3
        bad[0] = 0
        with pytest.raises(ValueError):
            get_backend("numpy").decode(
                enc.data, enc.nbits, symbols.size, book, 256, bad
            )

    @pytest.mark.parametrize("name", ["pure", "numpy"])
    def test_empty_codebook_with_count_rejected(self, name):
        # Regression: the canonical walk crashed with IndexError on an
        # all-zero-length codebook instead of reporting corruption.
        book = build_codebook(np.zeros(8, dtype=np.int64))
        assert book.max_length == 0
        with pytest.raises(ValueError, match="corrupt Huffman stream"):
            get_backend(name).decode(b"\x00\x00", 9, 5, book, 0, None)

    def test_plain_decode_empty_codebook(self):
        book = build_codebook(np.zeros(8, dtype=np.int64))
        with pytest.raises(ValueError, match="corrupt Huffman stream"):
            decode(b"\x00\x00", 9, 5, book)


class TestBlockFormatVersions:
    def test_round_trip_preserves_chunk_index(self, rng):
        field = _smooth_field(rng)
        block = SZCompressor(chunk_size=64).compress(field, 0.1)
        restored = CompressedBlock.from_bytes(block.to_bytes())
        assert restored.chunk_size == 64
        assert restored.chunk_offsets == block.chunk_offsets
        recon = SZCompressor().decompress(restored)
        assert np.max(np.abs(field - recon)) <= 0.1 * (1 + 1e-9)

    def test_current_blob_version_byte(self, rng):
        blob = SZCompressor().compress(_smooth_field(rng), 0.1).to_bytes()
        assert blob[:4] == b"RSZ1" and blob[4] == 3

    def test_v1_write_path_still_available(self, rng):
        field = _smooth_field(rng)
        block = SZCompressor().compress(field, 0.1)
        block.chunk_size = 0
        block.chunk_offsets = None
        blob = block.to_bytes()
        assert blob[4] == 1
        restored = CompressedBlock.from_bytes(blob)
        assert restored.chunk_offsets is None
        # v1 blocks decode through the reference path on every backend.
        for name in available_backends():
            recon = SZCompressor(backend=name).decompress(restored)
            assert np.max(np.abs(field - recon)) <= 0.1 * (1 + 1e-9)

    def test_golden_v1_blob_still_decompresses(self):
        """A block written by the pre-kernels codec must keep decoding."""
        golden = json.loads(
            (_DATA_DIR / "block_v1_golden.json").read_text()
        )
        blob = base64.b64decode(golden["blob_b64"])
        expected = np.frombuffer(
            base64.b64decode(golden["recon_b64"]), dtype=np.float64
        ).reshape(golden["shape"])
        block = CompressedBlock.from_bytes(blob)
        assert block.chunk_offsets is None
        for name in available_backends():
            recon = SZCompressor(backend=name).decompress(block)
            assert np.array_equal(recon, expected), name


class TestFromBytesValidation:
    @pytest.fixture
    def blob(self, rng):
        return SZCompressor().compress(_smooth_field(rng), 0.1).to_bytes()

    def test_truncated_header_named(self):
        with pytest.raises(ValueError, match="header"):
            CompressedBlock.from_bytes(b"RSZ1\x02")

    def test_truncated_payload_named(self, blob):
        with pytest.raises(
            ValueError, match="truncated compressed block.*payload"
        ):
            CompressedBlock.from_bytes(blob[:-20])

    def test_truncated_dims_named(self, blob):
        head = struct.calcsize("<4sBBBdIQQQI")
        with pytest.raises(ValueError, match="shape dims"):
            CompressedBlock.from_bytes(blob[: head + 4])

    def test_truncated_chunk_offsets_named(self, blob):
        head = struct.calcsize("<4sBBBdIQQQI")
        # header + dims(3) + flags + codec info(2) + chunk header +
        # first offset only
        with pytest.raises(ValueError, match="chunk offsets"):
            CompressedBlock.from_bytes(blob[: head + 24 + 1 + 2 + 8 + 4])

    def test_garbage_rejected_with_value_error(self):
        # Arbitrary garbage must never surface a raw struct.error.
        with pytest.raises(ValueError):
            CompressedBlock.from_bytes(b"\x01\x02\x03")

    def test_unknown_version_rejected(self, blob):
        bad = blob[:4] + b"\x09" + blob[5:]
        with pytest.raises(ValueError, match="version"):
            CompressedBlock.from_bytes(bad)

    def test_unknown_dtype_rejected(self, blob):
        bad = blob[:5] + b"\x07" + blob[6:]
        with pytest.raises(ValueError, match="dtype"):
            CompressedBlock.from_bytes(bad)

    def test_any_truncation_raises_value_error(self, blob):
        for cut in range(0, len(blob) - 1, 7):
            with pytest.raises(ValueError):
                CompressedBlock.from_bytes(blob[:cut])


class TestOverflowGuard:
    def test_huge_value_tiny_bound_rejected(self):
        values = np.array([1e30, 0.0])
        with pytest.raises(ValueError, match="overflow"):
            prequantize(values, 1e-6)

    def test_non_finite_rejected(self):
        with pytest.raises(ValueError, match="overflow"):
            prequantize(np.array([np.inf]), 0.1)
        with pytest.raises(ValueError, match="overflow"):
            prequantize(np.array([np.nan]), 0.1)

    def test_compressor_surfaces_the_error(self):
        field = np.full((8, 8), 1e300)
        with pytest.raises(ValueError, match="overflow"):
            SZCompressor().compress(field, 1e-12)

    def test_large_but_representable_ok(self):
        values = np.array([2.0**62, -(2.0**62)])
        grid = prequantize(values, 0.5)
        assert np.array_equal(grid, np.array([2**62, -(2**62)]))
