"""Tests for quality metrics and the pre-compression ratio/time models."""

import math

import numpy as np
import pytest

from repro.compression import (
    CompressionThroughputModel,
    RatioModel,
    SZCompressor,
    bit_rate,
    build_codebook,
    compression_ratio,
    max_abs_error,
    nrmse,
    psnr,
)


class TestMetrics:
    def test_compression_ratio(self):
        assert compression_ratio(100, 10) == 10.0

    def test_compression_ratio_zero_compressed(self):
        assert compression_ratio(100, 0) == math.inf
        assert compression_ratio(0, 0) == 1.0

    def test_compression_ratio_negative_rejected(self):
        with pytest.raises(ValueError):
            compression_ratio(-1, 10)

    def test_bit_rate(self):
        assert bit_rate(100, 25) == 2.0
        assert bit_rate(0, 25) == 0.0

    def test_psnr_identical_is_inf(self):
        x = np.array([1.0, 2.0, 3.0])
        assert psnr(x, x) == math.inf

    def test_psnr_known_value(self):
        x = np.array([0.0, 1.0])
        y = np.array([0.1, 1.0])
        # range=1, mse=0.005 -> psnr = -10*log10(0.005) ~ 23.01 dB
        assert psnr(x, y) == pytest.approx(23.0103, abs=1e-3)

    def test_max_abs_error(self):
        assert max_abs_error(np.array([1.0, 2.0]), np.array([1.5, 2.0])) == 0.5

    def test_nrmse(self):
        x = np.array([0.0, 2.0])
        y = np.array([0.0, 1.0])
        assert nrmse(x, y) == pytest.approx(math.sqrt(0.5) / 2.0)

    def test_empty_arrays(self):
        empty = np.zeros(0)
        assert max_abs_error(empty, empty) == 0.0
        assert nrmse(empty, empty) == 0.0


class TestRatioModel:
    def _field(self, rng, shape=(32, 32, 32)):
        base = np.cumsum(rng.normal(0, 1, size=shape), axis=0)
        return np.cumsum(base, axis=1)

    def test_prediction_close_to_actual(self, rng):
        comp = SZCompressor()
        model = RatioModel(comp)
        field = self._field(rng)
        eb = np.ptp(field) * 1e-3
        predicted = model.predict(field, eb)
        actual = comp.compress(field, eb).compression_ratio
        # Within 2x either way is the paper's working accuracy.
        assert predicted.ratio == pytest.approx(actual, rel=1.0)

    def test_prediction_direction_tracks_error_bound(self, rng):
        comp = SZCompressor()
        model = RatioModel(comp)
        field = self._field(rng)
        loose = model.predict(field, np.ptp(field) * 1e-2).ratio
        tight = model.predict(field, np.ptp(field) * 1e-5).ratio
        assert loose > tight

    def test_shared_codebook_path(self, rng):
        comp = SZCompressor()
        model = RatioModel(comp)
        field = self._field(rng)
        eb = np.ptp(field) * 1e-3
        hist = comp.histogram(field, eb)
        shared = build_codebook(hist, force_symbols=(comp.sentinel,))
        estimate = model.predict(field, eb, shared_codebook=shared)
        assert estimate.ratio > 1.0

    def test_sampling_used_for_large_blocks(self, rng):
        comp = SZCompressor()
        model = RatioModel(comp, sample_limit=1024)
        field = self._field(rng, shape=(64, 32, 32))
        estimate = model.predict(field, np.ptp(field) * 1e-3)
        assert estimate.ratio > 1.0

    def test_empty_block(self):
        comp = SZCompressor()
        model = RatioModel(comp)
        estimate = model.predict(np.zeros((0,)), 0.1)
        assert estimate.ratio == 1.0

    def test_outlier_fraction_reported(self, rng):
        comp = SZCompressor(radius=4)  # tiny radius forces outliers
        model = RatioModel(comp)
        field = rng.normal(0, 1000, size=(16, 16))
        estimate = model.predict(field, 0.01)
        assert estimate.outlier_fraction > 0.0


class TestThroughputModel:
    def test_linear_in_size(self):
        model = CompressionThroughputModel(
            throughput_bytes_per_s=100e6, setup_s=0.0, tree_build_s=0.0
        )
        assert model.compression_time(100_000_000) == pytest.approx(1.0)

    def test_tree_build_charged_without_shared_tree(self):
        model = CompressionThroughputModel()
        with_tree = model.compression_time(2**20, shared_tree=False)
        without = model.compression_time(2**20, shared_tree=True)
        assert with_tree - without == pytest.approx(model.tree_build_s)

    def test_small_blocks_dominated_by_constant_cost(self):
        model = CompressionThroughputModel()
        small = model.compression_time(2**16, shared_tree=False)
        effective_throughput = 2**16 / small
        assert effective_throughput < model.throughput_bytes_per_s / 5

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            CompressionThroughputModel().compression_time(-1)
