"""Tests for the integer Lorenzo transform."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.compression import lorenzo_forward, lorenzo_inverse


class TestLorenzoRoundTrip:
    @pytest.mark.parametrize("shape", [(7,), (4, 5), (3, 4, 5), (2, 3, 2, 2)])
    def test_round_trip_random(self, shape, rng):
        values = rng.integers(-1000, 1000, size=shape).astype(np.int64)
        assert np.array_equal(
            lorenzo_inverse(lorenzo_forward(values)), values
        )

    def test_constant_field_gives_single_nonzero(self):
        values = np.full((8, 8), 7, dtype=np.int64)
        deltas = lorenzo_forward(values)
        assert deltas[0, 0] == 7
        assert np.count_nonzero(deltas) == 1

    def test_linear_ramp_1d(self):
        values = np.arange(10, dtype=np.int64)
        deltas = lorenzo_forward(values)
        assert np.array_equal(deltas, np.array([0] + [1] * 9))

    def test_smooth_2d_concentrates_near_zero(self, rng):
        x = np.linspace(0, 4 * np.pi, 64)
        smooth = (1000 * np.sin(x)[:, None] * np.cos(x)[None, :]).astype(
            np.int64
        )
        deltas = lorenzo_forward(smooth)
        # Second-mixed-differences of a smooth field are tiny.
        assert np.abs(deltas[1:, 1:]).max() < np.abs(smooth).max() / 10

    def test_empty_array(self):
        values = np.zeros((0,), dtype=np.int64)
        assert lorenzo_forward(values).size == 0

    def test_rank0_rejected(self):
        with pytest.raises(ValueError):
            lorenzo_forward(np.int64(3))
        with pytest.raises(ValueError):
            lorenzo_inverse(np.int64(3))


@given(
    values=arrays(
        dtype=np.int64,
        shape=array_shapes(min_dims=1, max_dims=3, min_side=1, max_side=8),
        elements=st.integers(min_value=-(2**30), max_value=2**30),
    )
)
@settings(max_examples=80, deadline=None)
def test_lorenzo_inverse_is_exact(values):
    assert np.array_equal(lorenzo_inverse(lorenzo_forward(values)), values)
