"""Tests for prequantization and code mapping with outliers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import (
    decode_codes,
    dequantize,
    encode_codes,
    prequantize,
)


class TestPrequantize:
    def test_error_bound_respected(self, rng):
        values = rng.normal(0, 100, size=1000)
        eb = 0.5
        recon = dequantize(prequantize(values, eb), eb)
        assert np.max(np.abs(values - recon)) <= eb + 1e-12

    def test_tiny_error_bound(self, rng):
        values = rng.normal(0, 1, size=100)
        eb = 1e-6
        recon = dequantize(prequantize(values, eb), eb)
        assert np.max(np.abs(values - recon)) <= eb * (1 + 1e-9)

    def test_zero_error_bound_rejected(self):
        with pytest.raises(ValueError):
            prequantize(np.zeros(3), 0.0)

    def test_negative_error_bound_rejected(self):
        with pytest.raises(ValueError):
            prequantize(np.zeros(3), -1.0)

    def test_preserves_shape(self, rng):
        values = rng.normal(size=(4, 5, 6))
        assert prequantize(values, 0.1).shape == (4, 5, 6)

    def test_integer_grid(self):
        values = np.array([0.0, 1.0, 2.0, -1.0])
        grid = prequantize(values, 0.5)  # grid spacing 1.0
        assert np.array_equal(grid, np.array([0, 1, 2, -1]))


class TestCodeMapping:
    def test_round_trip_no_outliers(self, rng):
        deltas = rng.integers(-100, 100, size=(10, 10)).astype(np.int64)
        q = encode_codes(deltas, radius=128)
        assert q.outlier_positions.size == 0
        assert np.array_equal(decode_codes(q), deltas)

    def test_round_trip_with_outliers(self, rng):
        deltas = rng.integers(-100, 100, size=50).astype(np.int64)
        deltas[7] = 10_000
        deltas[21] = -99_999
        q = encode_codes(deltas, radius=128)
        assert q.outlier_positions.size == 2
        assert np.array_equal(decode_codes(q), deltas)

    def test_boundary_values(self):
        radius = 8
        deltas = np.array([-radius, -radius + 1, 0, radius - 1, radius])
        q = encode_codes(deltas, radius=radius)
        # The alphabet covers [-radius, radius): -radius is code 0, only
        # +radius overflows into the outlier channel.
        assert set(q.outlier_positions.tolist()) == {4}
        assert q.codes[0] == 0
        assert np.array_equal(decode_codes(q), deltas)

    def test_minus_radius_uses_code_zero_not_outlier(self):
        # Regression: symmetric data routed delta == -radius to the
        # outlier channel, leaving code 0 unused and inflating outlier
        # counts.
        radius = 16
        deltas = np.full(100, -radius, dtype=np.int64)
        q = encode_codes(deltas, radius=radius)
        assert q.outlier_positions.size == 0
        assert np.all(q.codes == 0)
        assert np.array_equal(decode_codes(q), deltas)

    def test_sentinel_code(self):
        radius = 8
        deltas = np.array([10_000], dtype=np.int64)
        q = encode_codes(deltas, radius=radius)
        assert q.codes[0] == 2 * radius

    def test_outlier_fraction(self):
        deltas = np.array([0, 0, 10_000, 0], dtype=np.int64)
        q = encode_codes(deltas, radius=8)
        assert q.outlier_fraction == pytest.approx(0.25)

    def test_empty(self):
        q = encode_codes(np.zeros(0, dtype=np.int64))
        assert q.outlier_fraction == 0.0
        assert decode_codes(q).size == 0

    def test_invalid_radius(self):
        with pytest.raises(ValueError):
            encode_codes(np.zeros(1, dtype=np.int64), radius=0)

    def test_num_symbols(self):
        q = encode_codes(np.zeros(1, dtype=np.int64), radius=128)
        assert q.num_symbols == 257


@given(
    st.lists(
        st.integers(min_value=-(2**40), max_value=2**40),
        min_size=0,
        max_size=200,
    ),
    st.integers(min_value=1, max_value=300),
)
@settings(max_examples=80, deadline=None)
def test_code_mapping_round_trip_property(deltas_list, radius):
    deltas = np.array(deltas_list, dtype=np.int64)
    q = encode_codes(deltas, radius=radius)
    assert np.array_equal(decode_codes(q), deltas)
    assert q.codes.max(initial=0) <= 2 * radius
