"""Ratio-model prediction accuracy across application regimes.

The framework's offset reservations and scheduling both hinge on the
pre-compression size estimate (Section 4.4); these tests pin down its
accuracy envelope on each application's characteristic data, and the
safety margin that keeps overflow 'rare'.
"""

import numpy as np
import pytest

from repro.apps import HaccModel, NyxModel, WarpXModel
from repro.compression import RatioModel, SZCompressor


def _accuracy(app, field_name, iteration=5, shape=None):
    compressor = SZCompressor()
    model = RatioModel(compressor, sample_limit=16384)
    data = app.generate_field(field_name, 0, iteration, shape=shape)
    data = np.ascontiguousarray(data)
    bound = app.field(field_name).error_bound
    predicted = model.predict(data, bound).compressed_nbytes
    actual = compressor.compress(data, bound).compressed_nbytes
    return predicted, actual


class TestPredictionAccuracy:
    @pytest.mark.parametrize(
        "field_name", ["temperature", "baryon_density", "velocity_x"]
    )
    def test_nyx_within_2x(self, field_name):
        app = NyxModel(seed=81, partition_shape=(24, 24, 24))
        predicted, actual = _accuracy(app, field_name)
        assert actual / 2 <= predicted <= actual * 2

    def test_reservation_covers_actual_on_most_fields(self):
        """With the 1.10 safety factor, predictions should cover the
        actual size for the clear majority of blocks (overflow 'rare')."""
        app = NyxModel(seed=81, partition_shape=(24, 24, 24))
        covered = 0
        total = 0
        for field_name in [f.name for f in app.fields[:6]]:
            predicted, actual = _accuracy(app, field_name)
            total += 1
            if predicted >= actual:
                covered += 1
        assert covered >= total - 1

    def test_warpx_prediction(self):
        app = WarpXModel(seed=81, partition_shape=(12, 12, 96))
        predicted, actual = _accuracy(app, "Ex")
        assert actual / 3 <= predicted <= actual * 3

    def test_hacc_prediction(self):
        app = HaccModel(seed=81, particles_per_rank=2**14)
        predicted, actual = _accuracy(app, "vx")
        assert actual / 2 <= predicted <= actual * 2

    def test_sampling_consistency(self, rng):
        """Strided sampling must track the full-data estimate."""
        compressor = SZCompressor()
        field = np.cumsum(
            np.cumsum(rng.normal(size=(48, 32, 32)), axis=0), axis=1
        )
        full = RatioModel(compressor, sample_limit=10**9).predict(
            field, 0.05
        )
        sampled = RatioModel(compressor, sample_limit=4096).predict(
            field, 0.05
        )
        assert sampled.ratio == pytest.approx(full.ratio, rel=0.5)

    def test_prediction_monotone_in_bound(self):
        app = NyxModel(seed=81, partition_shape=(20, 20, 20))
        compressor = SZCompressor()
        model = RatioModel(compressor)
        data = np.ascontiguousarray(
            app.generate_field("temperature", 0, 5)
        )
        loose = model.predict(data, 1e4).compressed_nbytes
        tight = model.predict(data, 1e1).compressed_nbytes
        assert loose < tight
