"""Tests for the value-range-relative error-bound mode."""

import numpy as np
import pytest

from repro.compression import SZCompressor, max_abs_error


class TestRelativeBound:
    def test_rel_bound_respected(self, rng):
        field = np.cumsum(rng.normal(size=(16, 16, 16)), axis=0) * 1e6
        compressor = SZCompressor()
        block = compressor.compress(field, 1e-3, mode="rel")
        recon = compressor.decompress(block)
        assert max_abs_error(field, recon) <= 1e-3 * np.ptp(field) * (
            1 + 1e-9
        )

    def test_rel_scales_with_magnitude(self, rng):
        base = np.cumsum(rng.normal(size=(12, 12)), axis=0)
        compressor = SZCompressor()
        small = compressor.resolve_bound(base, 1e-2, "rel")
        large = compressor.resolve_bound(base * 1e8, 1e-2, "rel")
        assert large == pytest.approx(small * 1e8, rel=1e-9)

    def test_abs_mode_default(self, rng):
        field = rng.normal(size=(8, 8))
        compressor = SZCompressor()
        assert compressor.resolve_bound(field, 0.5) == 0.5

    def test_constant_field_rel_bound(self):
        field = np.full((8, 8), 7.0)
        compressor = SZCompressor()
        block = compressor.compress(field, 1e-3, mode="rel")
        recon = compressor.decompress(block)
        assert np.allclose(recon, field)

    def test_unknown_mode_rejected(self, rng):
        with pytest.raises(ValueError, match="unknown error-bound mode"):
            SZCompressor().compress(
                rng.normal(size=4), 0.1, mode="percent"
            )

    def test_rel_ratio_stable_across_scales(self, rng):
        base = np.cumsum(rng.normal(size=(16, 16, 16)), axis=0)
        compressor = SZCompressor()
        r1 = compressor.compress(base, 1e-3, mode="rel").compression_ratio
        r2 = compressor.compress(
            base * 1e9, 1e-3, mode="rel"
        ).compression_ratio
        assert r2 == pytest.approx(r1, rel=0.1)
