"""Tests for the shared Huffman tree lifecycle manager."""

import numpy as np
import pytest

from repro.compression import (
    SharedTreeManager,
    SZCompressor,
    build_codebook,
    degradation_ratio,
)


def _hist(rng, size=257, concentration=0.5):
    center = size // 2
    samples = np.clip(
        np.rint(rng.normal(center, concentration * 10, size=10_000)),
        0,
        size - 1,
    ).astype(np.int64)
    return np.bincount(samples, minlength=size)


class TestSharedTreeManager:
    def test_no_tree_before_first_iteration(self):
        mgr = SharedTreeManager(num_symbols=257, sentinel=256)
        assert mgr.codebook is None

    def test_tree_built_after_first_iteration(self, rng):
        mgr = SharedTreeManager(num_symbols=257, sentinel=256)
        mgr.observe(_hist(rng))
        assert mgr.end_iteration()
        assert mgr.codebook is not None

    def test_sentinel_always_coded(self, rng):
        mgr = SharedTreeManager(num_symbols=257, sentinel=256)
        hist = _hist(rng)
        hist[256] = 0
        mgr.observe(hist)
        mgr.end_iteration()
        assert mgr.codebook.lengths[256] > 0

    def test_rebuild_period(self, rng):
        mgr = SharedTreeManager(num_symbols=257, sentinel=256, rebuild_period=3)
        mgr.observe(_hist(rng))
        assert mgr.end_iteration()  # first build
        for expected in (False, False, True):
            mgr.observe(_hist(rng))
            assert mgr.end_iteration() is expected

    def test_tree_age_tracks_iterations(self, rng):
        mgr = SharedTreeManager(num_symbols=257, sentinel=256, rebuild_period=5)
        mgr.observe(_hist(rng))
        mgr.end_iteration()
        assert mgr.tree_age == 0
        mgr.observe(_hist(rng))
        mgr.end_iteration()
        assert mgr.tree_age == 1

    def test_histogram_size_validated(self):
        mgr = SharedTreeManager(num_symbols=257, sentinel=256)
        with pytest.raises(ValueError):
            mgr.observe(np.zeros(10, dtype=np.int64))

    def test_invalid_rebuild_period(self):
        with pytest.raises(ValueError):
            SharedTreeManager(num_symbols=3, sentinel=2, rebuild_period=0)

    def test_no_data_no_build(self):
        mgr = SharedTreeManager(num_symbols=257, sentinel=256)
        assert not mgr.end_iteration()
        assert mgr.codebook is None

    def test_histograms_accumulate_across_blocks(self, rng):
        mgr = SharedTreeManager(num_symbols=257, sentinel=256)
        for _ in range(4):
            mgr.observe(_hist(rng))
        mgr.end_iteration()
        assert mgr.codebook is not None


class TestDegradation:
    def test_identical_histogram_no_degradation(self, rng):
        hist = _hist(rng)
        shared = build_codebook(hist, force_symbols=(256,))
        ratio = degradation_ratio(hist, shared)
        assert 0.97 <= ratio <= 1.0 + 1e-9

    def test_drifted_histogram_degrades(self, rng):
        hist0 = _hist(rng, concentration=0.5)
        hist9 = _hist(rng, concentration=3.0)
        shared = build_codebook(hist0, force_symbols=(256,))
        fresh = degradation_ratio(hist0, shared)
        stale = degradation_ratio(hist9, shared)
        assert stale <= fresh + 1e-9

    def test_degradation_monotone_in_drift(self, rng):
        hist0 = _hist(rng, concentration=0.5)
        shared = build_codebook(hist0, force_symbols=(256,))
        ratios = [
            degradation_ratio(_hist(rng, concentration=c), shared)
            for c in (0.5, 1.5, 4.0)
        ]
        assert ratios[0] >= ratios[-1]

    def test_integration_with_compressor(self, rng):
        # The manager's tree must plug straight into SZCompressor.
        comp = SZCompressor()
        mgr = SharedTreeManager(
            num_symbols=2 * comp.radius + 1, sentinel=comp.sentinel
        )
        base = np.cumsum(rng.normal(0, 1, size=(16, 16, 16)), axis=0)
        mgr.observe(comp.histogram(base, 0.1))
        mgr.end_iteration()
        block = comp.compress(base, 0.1, shared_codebook=mgr.codebook)
        recon = comp.decompress(block, shared_codebook=mgr.codebook)
        assert np.max(np.abs(base - recon)) <= 0.1 * (1 + 1e-9)
