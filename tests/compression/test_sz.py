"""End-to-end tests for the SZ-style compressor."""

import numpy as np
import pytest

from repro.compression import (
    CompressedBlock,
    SZCompressor,
    build_codebook,
    max_abs_error,
    psnr,
)


def _smooth_field(rng, shape=(24, 24, 24), scale=100.0):
    """A correlated field resembling scientific data."""
    base = rng.normal(0, 1, size=shape)
    for axis in range(len(shape)):
        base = np.cumsum(base, axis=axis)
    return (base * scale / max(1.0, np.abs(base).max())).astype(np.float64)


@pytest.fixture
def compressor():
    return SZCompressor()


class TestRoundTrip:
    @pytest.mark.parametrize("eb", [1.0, 0.1, 0.01])
    def test_error_bound_guaranteed(self, compressor, rng, eb):
        field = _smooth_field(rng)
        block = compressor.compress(field, eb)
        recon = compressor.decompress(block)
        assert max_abs_error(field, recon) <= eb * (1 + 1e-9)

    def test_float32_supported(self, compressor, rng):
        field = _smooth_field(rng).astype(np.float32)
        block = compressor.compress(field, 0.5)
        recon = compressor.decompress(block)
        assert recon.dtype == np.float32
        # float32 reconstruction adds one ulp-scale rounding on top of eb.
        assert max_abs_error(field, recon) <= 0.5 * (1 + 1e-5) + 1e-4

    def test_shape_preserved(self, compressor, rng):
        field = _smooth_field(rng, shape=(5, 7, 11))
        recon = compressor.decompress(compressor.compress(field, 0.1))
        assert recon.shape == (5, 7, 11)

    def test_1d_and_2d(self, compressor, rng):
        for shape in [(1000,), (50, 40)]:
            field = _smooth_field(rng, shape=shape)
            recon = compressor.decompress(compressor.compress(field, 0.2))
            assert max_abs_error(field, recon) <= 0.2 * (1 + 1e-9)

    def test_smooth_data_compresses_well(self, compressor, rng):
        field = _smooth_field(rng, shape=(32, 32, 32))
        block = compressor.compress(field, np.ptp(field) * 1e-3)
        assert block.compression_ratio > 4.0

    def test_random_noise_still_bounded(self, compressor, rng):
        field = rng.normal(0, 1000, size=(16, 16, 16))
        block = compressor.compress(field, 1.0)
        recon = compressor.decompress(block)
        assert max_abs_error(field, recon) <= 1.0 * (1 + 1e-9)

    def test_constant_field(self, compressor):
        field = np.full((64, 64), 3.14)
        block = compressor.compress(field, 0.01)
        recon = compressor.decompress(block)
        assert max_abs_error(field, recon) <= 0.01
        assert block.compression_ratio > 20.0

    def test_psnr_reasonable(self, compressor, rng):
        field = _smooth_field(rng)
        eb = np.ptp(field) * 1e-3
        recon = compressor.decompress(compressor.compress(field, eb))
        assert psnr(field, recon) > 55.0  # ~1e-3 range error bound

    def test_unsupported_dtype_rejected(self, compressor):
        with pytest.raises(TypeError):
            compressor.compress(np.zeros(4, dtype=np.int32), 0.1)

    def test_invalid_radius_rejected(self):
        with pytest.raises(ValueError):
            SZCompressor(radius=0)


class TestSerialization:
    def test_block_round_trips_through_bytes(self, compressor, rng):
        field = _smooth_field(rng)
        block = compressor.compress(field, 0.1)
        restored = CompressedBlock.from_bytes(block.to_bytes())
        recon = compressor.decompress(restored)
        assert max_abs_error(field, recon) <= 0.1 * (1 + 1e-9)

    def test_metadata_preserved(self, compressor, rng):
        field = _smooth_field(rng, shape=(8, 9, 10))
        block = compressor.compress(field, 0.25)
        restored = CompressedBlock.from_bytes(block.to_bytes())
        assert restored.shape == (8, 9, 10)
        assert restored.error_bound == 0.25
        assert restored.dtype == np.float64
        assert restored.nbits == block.nbits

    def test_garbage_rejected(self):
        with pytest.raises(Exception):
            CompressedBlock.from_bytes(b"garbage data here padding...")


class TestSharedTree:
    def test_shared_tree_round_trip(self, compressor, rng):
        field = _smooth_field(rng)
        hist = compressor.histogram(field, 0.1)
        shared = build_codebook(hist, force_symbols=(compressor.sentinel,))
        block = compressor.compress(field, 0.1, shared_codebook=shared)
        assert block.used_shared_tree
        assert block.codebook_blob == b""
        recon = compressor.decompress(block, shared_codebook=shared)
        assert max_abs_error(field, recon) <= 0.1 * (1 + 1e-9)

    def test_shared_tree_from_other_data_still_correct(
        self, compressor, rng
    ):
        # Tree trained on iteration-0 data, used on drifted data: unseen
        # symbols must fall back to outliers, never corrupt the stream.
        train = _smooth_field(rng)
        test = _smooth_field(rng, scale=250.0) + 17.0
        hist = compressor.histogram(train, 0.1)
        shared = build_codebook(hist, force_symbols=(compressor.sentinel,))
        block = compressor.compress(test, 0.1, shared_codebook=shared)
        recon = compressor.decompress(block, shared_codebook=shared)
        assert max_abs_error(test, recon) <= 0.1 * (1 + 1e-9)

    def test_stale_tree_costs_ratio(self, compressor, rng):
        train = _smooth_field(rng)
        drifted = _smooth_field(rng, scale=400.0)
        hist = compressor.histogram(train, 0.05)
        shared = build_codebook(hist, force_symbols=(compressor.sentinel,))
        native = compressor.compress(drifted, 0.05)
        with_stale = compressor.compress(
            drifted, 0.05, shared_codebook=shared
        )
        assert (
            with_stale.compressed_nbytes >= native.compressed_nbytes * 0.8
        )

    def test_decompress_shared_without_book_raises(self, compressor, rng):
        field = _smooth_field(rng)
        hist = compressor.histogram(field, 0.1)
        shared = build_codebook(hist, force_symbols=(compressor.sentinel,))
        block = compressor.compress(field, 0.1, shared_codebook=shared)
        with pytest.raises(ValueError, match="shared tree"):
            compressor.decompress(block)

    def test_native_smaller_payload_than_shared_mismatched(
        self, compressor, rng
    ):
        # A native tree embeds its codebook but codes optimally; verify
        # both paths produce decodable blocks of plausible size.
        field = _smooth_field(rng)
        native = compressor.compress(field, 0.1)
        assert native.codebook_blob != b""
        assert not native.used_shared_tree
