"""SZ compressor variants: radius sweep, stage invariants, random bounds."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import SZCompressor, max_abs_error


def _field(rng, shape=(14, 14, 14)):
    return np.cumsum(rng.normal(size=shape), axis=0)


class TestRadiusVariants:
    @pytest.mark.parametrize("radius", [4, 32, 128, 512])
    def test_round_trip_any_radius(self, rng, radius):
        compressor = SZCompressor(radius=radius)
        field = _field(rng)
        block = compressor.compress(field, 0.05)
        recon = compressor.decompress(block)
        assert max_abs_error(field, recon) <= 0.05 * (1 + 1e-9)

    def test_small_radius_forces_outliers(self, rng):
        tiny = SZCompressor(radius=2)
        field = _field(rng) * 100
        block = tiny.compress(field, 0.01)
        assert block.num_outliers > 0
        recon = tiny.decompress(block)
        assert max_abs_error(field, recon) <= 0.01 * (1 + 1e-9)

    def test_sentinel_position(self):
        assert SZCompressor(radius=7).sentinel == 14

    def test_larger_radius_fewer_outliers(self, rng):
        field = _field(rng) * 50
        small = SZCompressor(radius=8).compress(field, 0.01)
        large = SZCompressor(radius=256).compress(field, 0.01)
        assert large.num_outliers <= small.num_outliers


class TestStageInvariants:
    def test_histogram_sums_to_size(self, rng):
        compressor = SZCompressor()
        field = _field(rng)
        hist = compressor.histogram(field, 0.1)
        assert int(hist.sum()) == field.size
        assert hist.size == 2 * compressor.radius + 1

    def test_quantize_codes_within_alphabet(self, rng):
        compressor = SZCompressor(radius=16)
        quantized = compressor.quantize(_field(rng), 0.05)
        assert quantized.codes.max() <= 2 * 16
        assert quantized.codes.min() >= 0

    def test_smoother_data_more_concentrated_histogram(self, rng):
        compressor = SZCompressor()
        smooth = _field(rng)
        # Uncorrelated data at the same per-point scale as the smooth
        # field's local increments, scaled up 20x so its Lorenzo deltas
        # spread over many codes while staying in-alphabet.
        eb = smooth.std() * 1e-3
        rough = rng.normal(size=(14, 14, 14)) * (20 * eb)
        h_smooth = compressor.histogram(smooth, eb)
        h_rough = compressor.histogram(rough, eb)

        def entropy(h):
            p = h[h > 0] / h.sum()
            return float(-(p * np.log2(p)).sum())

        assert entropy(h_smooth) < entropy(h_rough)

    def test_nbits_matches_payload_bound(self, rng):
        compressor = SZCompressor()
        block = compressor.compress(_field(rng), 0.05)
        # Huffman bytes inside the payload can't exceed the zlib input.
        assert (block.nbits + 7) // 8 >= 1


@given(
    seed=st.integers(min_value=0, max_value=2**16),
    exponent=st.integers(min_value=-6, max_value=1),
)
@settings(max_examples=30, deadline=None)
def test_round_trip_random_bounds(seed, exponent):
    rng = np.random.default_rng(seed)
    field = np.cumsum(rng.normal(size=(10, 10)), axis=0)
    bound = 10.0**exponent
    compressor = SZCompressor()
    block = compressor.compress(field, bound)
    recon = compressor.decompress(block)
    assert max_abs_error(field, recon) <= bound * (1 + 1e-9)
