"""Tests for the ZFP-style fixed-rate transform codec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import ZFPCompressor
from repro.compression.zfp import (
    _blockify,
    _from_negabinary,
    _lift_forward,
    _lift_inverse,
    _to_negabinary,
    _unblockify,
)


def _smooth(rng, shape):
    arr = rng.normal(size=shape)
    for axis in range(len(shape)):
        arr = np.cumsum(arr, axis=axis)
    return arr


class TestInternals:
    @pytest.mark.parametrize("ndim", [1, 2, 3])
    def test_lifting_exactly_invertible(self, rng, ndim):
        blocks = rng.integers(-(2**27), 2**27, size=(16, 4**ndim)).astype(
            np.int64
        )
        assert np.array_equal(
            _lift_inverse(_lift_forward(blocks, ndim), ndim), blocks
        )

    def test_lifting_decorrelates_constant_block(self):
        blocks = np.full((1, 64), 1000, dtype=np.int64)
        out = _lift_forward(blocks, 3)
        # A constant block concentrates into the DC coefficient.
        assert np.count_nonzero(out) <= 1

    def test_negabinary_round_trip(self, rng):
        values = rng.integers(-(2**30), 2**30, size=5000)
        assert np.array_equal(
            _from_negabinary(_to_negabinary(values)), values
        )

    def test_negabinary_zero(self):
        assert _to_negabinary(np.array([0]))[0] == 0

    @pytest.mark.parametrize(
        "shape", [(7,), (9, 5), (5, 6, 7), (4, 4, 4), (1, 1, 1)]
    )
    def test_blockify_round_trip(self, rng, shape):
        values = rng.normal(size=shape)
        blocks = _blockify(values)
        assert blocks.shape[1] == 4 ** len(shape)
        assert np.array_equal(_unblockify(blocks, shape), values)


class TestCodec:
    def test_error_shrinks_with_rate(self, rng):
        field = _smooth(rng, (20, 20, 20))
        errors = []
        for rate in (4, 8, 16, 32):
            codec = ZFPCompressor(rate)
            recon = codec.decompress(codec.compress(field))
            errors.append(float(np.max(np.abs(field - recon))))
        assert errors == sorted(errors, reverse=True)
        assert errors[-1] < np.ptp(field) * 1e-7

    def test_fixed_rate_means_fixed_size(self, rng):
        smooth = _smooth(rng, (16, 16, 16))
        noisy = rng.normal(size=(16, 16, 16))
        codec = ZFPCompressor(8)
        assert (
            codec.compress(smooth).compressed_nbytes
            == codec.compress(noisy).compressed_nbytes
        )

    def test_compression_ratio_matches_rate(self, rng):
        field = _smooth(rng, (16, 16, 16)).astype(np.float64)
        codec = ZFPCompressor(8)
        stream = codec.compress(field)
        # 64-bit values at 8 bits/value + exponent sidecar: just under 8x.
        assert 6.0 < stream.compression_ratio <= 8.0

    @pytest.mark.parametrize("shape", [(33,), (10, 14), (9, 9, 9)])
    def test_non_multiple_of_four_shapes(self, rng, shape):
        field = _smooth(rng, shape)
        codec = ZFPCompressor(16)
        recon = codec.decompress(codec.compress(field))
        assert recon.shape == shape
        assert np.max(np.abs(field - recon)) < np.ptp(field) * 1e-3

    def test_float32_supported(self, rng):
        field = _smooth(rng, (8, 8, 8)).astype(np.float32)
        codec = ZFPCompressor(16)
        recon = codec.decompress(codec.compress(field))
        assert recon.dtype == np.float32
        # Error scales with the largest block magnitude at fixed rate.
        assert np.max(np.abs(field - recon)) < np.abs(field).max() * 5e-3

    def test_zero_field(self):
        codec = ZFPCompressor(8)
        field = np.zeros((8, 8))
        recon = codec.decompress(codec.compress(field))
        assert np.array_equal(recon, field)

    def test_constant_field_cheap_and_exact(self):
        codec = ZFPCompressor(8)
        field = np.full((8, 8, 8), 2.5)
        recon = codec.decompress(codec.compress(field))
        assert np.allclose(recon, field, atol=1e-6 * 2.5)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            ZFPCompressor(0)
        with pytest.raises(ValueError):
            ZFPCompressor(33)

    def test_invalid_dtype(self):
        with pytest.raises(TypeError):
            ZFPCompressor(8).compress(np.zeros((4, 4), dtype=np.int32))

    def test_invalid_rank(self):
        with pytest.raises(ValueError):
            ZFPCompressor(8).compress(np.zeros((2, 2, 2, 2)))

    def test_smooth_beats_noise_in_accuracy(self, rng):
        codec = ZFPCompressor(8)
        smooth = _smooth(rng, (16, 16, 16))
        smooth /= np.abs(smooth).max()
        noise = rng.normal(size=(16, 16, 16))
        noise /= np.abs(noise).max()
        err_smooth = np.max(
            np.abs(smooth - codec.decompress(codec.compress(smooth)))
        )
        err_noise = np.max(
            np.abs(noise - codec.decompress(codec.compress(noise)))
        )
        assert err_smooth < err_noise


@given(
    rate=st.integers(min_value=28, max_value=32),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=20, deadline=None)
def test_high_rate_near_lossless(rate, seed):
    rng = np.random.default_rng(seed)
    field = _smooth(rng, (8, 8))
    codec = ZFPCompressor(rate)
    recon = codec.decompress(codec.compress(field))
    scale = max(np.abs(field).max(), 1e-12)
    assert np.max(np.abs(field - recon)) <= scale * 2.0 ** -(rate - 8)


class TestSerialization:
    def test_stream_round_trips_through_bytes(self, rng):
        field = _smooth(rng, (12, 12, 12))
        codec = ZFPCompressor(12)
        stream = codec.compress(field)
        from repro.compression import ZFPBlockStream

        restored = ZFPBlockStream.from_bytes(stream.to_bytes())
        assert restored.shape == stream.shape
        assert restored.rate_bits == 12
        assert restored.dtype == stream.dtype
        recon_a = codec.decompress(stream)
        recon_b = codec.decompress(restored)
        assert np.array_equal(recon_a, recon_b)

    def test_garbage_rejected(self):
        from repro.compression import ZFPBlockStream

        with pytest.raises(ValueError, match="not a ZFP stream"):
            ZFPBlockStream.from_bytes(b"XXXX" + b"\0" * 40)

    def test_float32_metadata(self, rng):
        from repro.compression import ZFPBlockStream

        field = _smooth(rng, (8, 8)).astype(np.float32)
        stream = ZFPCompressor(8).compress(field)
        restored = ZFPBlockStream.from_bytes(stream.to_bytes())
        assert restored.dtype == np.float32
