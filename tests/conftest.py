"""Shared fixtures and instance builders for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Interval, Job, ProblemInstance


def figure1_instance() -> ProblemInstance:
    """The exact worked example from Figure 1 of the paper.

    Iteration [0, 12]; main obstacles Y1=[3,4], Y2=[6,7]; background
    obstacle G1=[4,5]; four jobs with (c, c') = (1,2), (2,1), (2,2), (3,2).
    """
    return ProblemInstance(
        begin=0.0,
        end=12.0,
        jobs=(
            Job(0, 1.0, 2.0),
            Job(1, 2.0, 1.0),
            Job(2, 2.0, 2.0),
            Job(3, 3.0, 2.0),
        ),
        main_obstacles=(Interval(3.0, 4.0), Interval(6.0, 7.0)),
        background_obstacles=(Interval(4.0, 5.0),),
    )


def random_instance(
    rng: np.random.Generator,
    num_jobs: int | None = None,
    num_main_obstacles: int | None = None,
    num_background_obstacles: int | None = None,
    length: float = 20.0,
) -> ProblemInstance:
    """A random feasible instance for stress tests."""
    if num_jobs is None:
        num_jobs = int(rng.integers(1, 9))
    if num_main_obstacles is None:
        num_main_obstacles = int(rng.integers(0, 4))
    if num_background_obstacles is None:
        num_background_obstacles = int(rng.integers(0, 4))

    def obstacles(count: int) -> tuple[Interval, ...]:
        if count == 0:
            return ()
        points = np.sort(rng.uniform(0.0, length, size=2 * count))
        return tuple(
            Interval(float(points[2 * i]), float(points[2 * i + 1]))
            for i in range(count)
        )

    jobs = tuple(
        Job(
            i,
            float(rng.uniform(0.1, 3.0)),
            float(rng.uniform(0.1, 3.0)),
        )
        for i in range(num_jobs)
    )
    return ProblemInstance(
        begin=0.0,
        end=length,
        jobs=jobs,
        main_obstacles=obstacles(num_main_obstacles),
        background_obstacles=obstacles(num_background_obstacles),
    )


@pytest.fixture(autouse=True)
def no_leaked_shared_memory():
    """Fail any test that leaves a repro-shm-* segment in /dev/shm.

    The process-pool engine promises to unlink every shared-memory
    segment it creates, even on abnormal shutdown; this fixture holds
    the whole suite to that contract.
    """
    from repro.engines.shm import active_segments

    before = set(active_segments())
    yield
    leaked = sorted(set(active_segments()) - before)
    assert not leaked, f"leaked /dev/shm segments: {leaked}"


@pytest.fixture
def figure1() -> ProblemInstance:
    return figure1_instance()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(20240422)
