"""Tests of the six scheduling heuristics, anchored on the paper's Figure 1."""

import pytest

from repro.core import (
    ALGORITHMS,
    Interval,
    Job,
    ProblemInstance,
    ext_johnson,
    ext_johnson_backfill,
    generation_list_schedule,
    generation_list_schedule_backfill,
    johnson_order,
    one_list_greedy,
    two_lists_greedy,
)
from tests.conftest import random_instance


class TestJohnsonOrder:
    def test_figure1_order(self, figure1):
        # M1 = {job0 (1<=2), job2 (2<=2)} sorted by c asc -> 0, 2.
        # M2 = {job1 (2>1), job3 (3>2)} sorted by c' desc -> 3, 1.
        # Paper's 1-based order: 1, 3, 4, 2.
        assert johnson_order(figure1.jobs) == [0, 2, 3, 1]

    def test_no_obstacles_johnson_is_optimal_small(self):
        # Classic Johnson example: optimal makespan reachable.
        jobs = (
            Job(0, 3.0, 2.0),
            Job(1, 1.0, 4.0),
            Job(2, 2.0, 3.0),
        )
        inst = ProblemInstance(begin=0.0, end=100.0, jobs=jobs)
        sched = ext_johnson(inst)
        sched.validate()
        # Johnson order: M1={1 (1<=4), 2 (2<=3)} -> [1, 2]; M2={0} -> [0].
        # Timeline: R1[0,1] R2[1,3] R0[3,6]; B1[1,5] B2[5,8] B0[8,10].
        assert sched.io_makespan == pytest.approx(10.0)

    def test_empty_jobs(self):
        assert johnson_order(()) == []


class TestFigure1Schedules:
    """Exact reproduction of Figures 1c and 1d."""

    def test_ext_johnson_matches_figure_1c(self, figure1):
        sched = ext_johnson(figure1)
        sched.validate()
        assert sched.compression[0] == Interval(0.0, 1.0)
        assert sched.compression[2] == Interval(1.0, 3.0)
        assert sched.compression[3] == Interval(7.0, 10.0)
        assert sched.compression[1] == Interval(10.0, 12.0)
        assert sched.io[0] == Interval(1.0, 3.0)
        assert sched.io[2] == Interval(5.0, 7.0)
        assert sched.io[3] == Interval(10.0, 12.0)
        assert sched.io[1] == Interval(12.0, 13.0)
        assert sched.io_makespan == pytest.approx(13.0)

    def test_ext_johnson_bf_matches_figure_1d(self, figure1):
        sched = ext_johnson_backfill(figure1)
        sched.validate()
        # Job 2 (paper job 2, index 1) backfills into the [4, 6] gap on the
        # main thread and the [7, 10] gap on the background thread.
        assert sched.compression[0] == Interval(0.0, 1.0)
        assert sched.compression[2] == Interval(1.0, 3.0)
        assert sched.compression[3] == Interval(7.0, 10.0)
        assert sched.compression[1] == Interval(4.0, 6.0)
        assert sched.io[1] == Interval(7.0, 8.0)
        assert sched.io[3] == Interval(10.0, 12.0)
        assert sched.io_makespan == pytest.approx(12.0)

    def test_bf_not_worse_than_plain_on_figure1(self, figure1):
        assert (
            ext_johnson_backfill(figure1).io_makespan
            <= ext_johnson(figure1).io_makespan
        )

    def test_m1_compression_starts_identical_with_and_without_bf(
        self, figure1
    ):
        # Paper remark: tasks in M1 are ordered by non-decreasing
        # compression time, so their compression start dates coincide
        # under ExtJohnson and ExtJohnson+BF.
        plain = ext_johnson(figure1)
        bf = ext_johnson_backfill(figure1)
        for idx in (0, 2):  # M1 jobs
            assert plain.compression[idx] == bf.compression[idx]


class TestGenerationListSchedule:
    def test_generation_order_used(self, figure1):
        sched = generation_list_schedule(figure1)
        sched.validate()
        # Jobs placed 0,1,2,3: R0[0,1] R1[1,3] R2[4,6] R3[7,10].
        assert sched.compression[0] == Interval(0.0, 1.0)
        assert sched.compression[1] == Interval(1.0, 3.0)
        assert sched.compression[2] == Interval(4.0, 6.0)
        assert sched.compression[3] == Interval(7.0, 10.0)

    def test_backfill_variant_validates(self, figure1):
        sched = generation_list_schedule_backfill(figure1)
        sched.validate()
        assert (
            sched.io_makespan
            <= generation_list_schedule(figure1).io_makespan
        )


class TestGreedy:
    def test_one_list_greedy_validates(self, figure1):
        sched = one_list_greedy(figure1)
        sched.validate()

    def test_two_lists_greedy_validates(self, figure1):
        sched = two_lists_greedy(figure1)
        sched.validate()

    def test_greedy_not_worse_than_generation_order(self, figure1):
        base = generation_list_schedule(figure1).io_makespan
        assert one_list_greedy(figure1).io_makespan <= base
        assert two_lists_greedy(figure1).io_makespan <= base

    def test_two_lists_explores_at_least_one_list(self, rng):
        # TwoListsGreedy's search space strictly contains OneListGreedy's
        # per-insertion choices; on random instances it should never be
        # more than marginally worse.
        for _ in range(10):
            inst = random_instance(rng, num_jobs=5)
            one = one_list_greedy(inst).io_makespan
            two = two_lists_greedy(inst).io_makespan
            assert two <= one + 1e-6 or two <= one * 1.05


class TestAllAlgorithms:
    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_single_job(self, name):
        inst = ProblemInstance(
            begin=0.0, end=10.0, jobs=(Job(0, 1.0, 2.0),)
        )
        sched = ALGORITHMS[name](inst)
        sched.validate()
        assert sched.io_makespan == pytest.approx(3.0)

    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_zero_jobs(self, name):
        inst = ProblemInstance(begin=0.0, end=10.0, jobs=())
        sched = ALGORITHMS[name](inst)
        assert sched.io_makespan == 0.0

    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_random_instances_all_valid(self, name, rng):
        for _ in range(25):
            inst = random_instance(rng)
            sched = ALGORITHMS[name](inst)
            sched.validate()
            assert sched.algorithm == name

    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_wall_of_obstacles(self, name):
        # Machine 1 fully busy until t=8; everything must queue after.
        inst = ProblemInstance(
            begin=0.0,
            end=10.0,
            jobs=(Job(0, 1.0, 1.0), Job(1, 1.0, 1.0)),
            main_obstacles=(Interval(0.0, 8.0),),
        )
        sched = ALGORITHMS[name](inst)
        sched.validate()
        assert all(iv.start >= 8.0 for iv in sched.compression.values())

    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_nonzero_begin(self, name, rng):
        inst = random_instance(rng, num_jobs=4)
        shifted = ProblemInstance(
            begin=50.0,
            end=50.0 + inst.length,
            jobs=inst.jobs,
            main_obstacles=tuple(
                iv.shifted(50.0) for iv in inst.main_obstacles
            ),
            background_obstacles=tuple(
                iv.shifted(50.0) for iv in inst.background_obstacles
            ),
        )
        a = ALGORITHMS[name](inst)
        b = ALGORITHMS[name](shifted)
        b.validate()
        assert a.io_makespan == pytest.approx(b.io_makespan)


class TestRegistry:
    def test_lists_six_algorithms(self):
        from repro.core import list_algorithms

        assert len(list_algorithms()) == 6

    def test_get_unknown_raises(self):
        from repro.core import get_algorithm

        with pytest.raises(KeyError, match="unknown algorithm"):
            get_algorithm("nope")

    def test_default_is_adopted_algorithm(self):
        from repro.core import DEFAULT_ALGORITHM, get_algorithm

        assert DEFAULT_ALGORITHM == "ExtJohnson+BF"
        assert get_algorithm(DEFAULT_ALGORITHM) is ext_johnson_backfill
