"""Tests for schedule lower bounds and concealment statistics."""

import pytest
from hypothesis import given, settings

from repro.core import (
    ALGORITHMS,
    Interval,
    Job,
    ProblemInstance,
    ext_johnson_backfill,
    ilp_schedule,
    lower_bound,
    schedule_stats,
)
from tests.conftest import random_instance
from tests.core.test_properties import instances


class TestLowerBound:
    def test_empty_instance(self):
        assert lower_bound(ProblemInstance(begin=0.0, end=5.0, jobs=())) == 0.0

    def test_single_job_no_obstacles(self):
        inst = ProblemInstance(
            begin=0.0, end=10.0, jobs=(Job(0, 2.0, 3.0),)
        )
        assert lower_bound(inst) == pytest.approx(5.0)

    def test_obstacle_pushes_bound(self):
        inst = ProblemInstance(
            begin=0.0,
            end=10.0,
            jobs=(Job(0, 2.0, 3.0),),
            main_obstacles=(Interval(0.0, 4.0),),
        )
        # Compression can't start before 4 -> job chain = 4+2+3 = 9.
        assert lower_bound(inst) == pytest.approx(9.0)

    def test_io_load_bound(self):
        # Many jobs with tiny compression but heavy I/O: the background
        # thread's total load dominates.
        jobs = tuple(Job(i, 0.1, 5.0) for i in range(4))
        inst = ProblemInstance(begin=0.0, end=100.0, jobs=jobs)
        assert lower_bound(inst) >= 20.0

    def test_figure1_bound_attained(self, figure1):
        # ExtJohnson+BF achieves 12.0 on Figure 1; the bound must not
        # exceed it.
        assert lower_bound(figure1) <= 12.0 + 1e-9

    def test_bound_respects_io_release(self):
        inst = ProblemInstance(
            begin=0.0,
            end=10.0,
            jobs=(Job(0, 0.0, 1.0, io_release=6.0),),
        )
        assert lower_bound(inst) == pytest.approx(7.0)

    def test_all_heuristics_respect_bound(self, rng):
        for _ in range(30):
            inst = random_instance(rng)
            bound = lower_bound(inst)
            for algo in ALGORITHMS.values():
                assert algo(inst).io_makespan >= bound - 1e-6

    def test_ilp_optimum_at_least_bound(self, rng):
        for _ in range(5):
            inst = random_instance(rng, num_jobs=3)
            result = ilp_schedule(inst, time_limit=10.0)
            if result.status == "optimal":
                assert result.objective >= lower_bound(inst) - 1e-4


class TestScheduleStats:
    def test_fully_concealed_schedule(self, figure1):
        schedule = ext_johnson_backfill(figure1)
        stats = schedule_stats(schedule)
        assert stats.concealed_fraction == pytest.approx(1.0)
        assert stats.spill == pytest.approx(0.0)
        assert stats.io_makespan == pytest.approx(12.0)

    def test_spilled_schedule(self):
        inst = ProblemInstance(
            begin=0.0, end=1.0, jobs=(Job(0, 2.0, 2.0),)
        )
        stats = schedule_stats(ext_johnson_backfill(inst))
        assert stats.spill > 0.0
        assert stats.concealed_fraction < 1.0

    def test_gap_nonnegative(self, rng):
        for _ in range(20):
            inst = random_instance(rng)
            stats = schedule_stats(ext_johnson_backfill(inst))
            assert stats.optimality_gap >= 0.0

    def test_idle_usage_bounded(self, figure1):
        stats = schedule_stats(ext_johnson_backfill(figure1))
        assert 0.0 <= stats.main_idle_used <= 1.0 + 1e-9
        assert 0.0 <= stats.background_idle_used <= 1.0 + 1e-9


@given(inst=instances())
@settings(max_examples=50, deadline=None)
def test_lower_bound_property(inst):
    bound = lower_bound(inst)
    for algo in ALGORITHMS.values():
        assert algo(inst).io_makespan >= bound - 1e-6
