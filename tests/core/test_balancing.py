"""Tests for intra-node I/O workload balancing (Section 3.4)."""

import pytest

from repro.core import IoTaskRef, balance_io_workloads


def _tasks(owner: int, durations: list[float]) -> list[IoTaskRef]:
    return [
        IoTaskRef(owner=owner, job_index=i, duration=d)
        for i, d in enumerate(durations)
    ]


class TestBalanceLoop:
    def test_balanced_input_untouched(self):
        result = balance_io_workloads(
            [_tasks(0, [1.0, 1.0]), _tasks(1, [1.0, 1.0])]
        )
        assert result.moves == 0
        assert result.workloads_after == [2.0, 2.0]

    def test_moves_first_task_of_heaviest_to_lightest(self):
        heavy = _tasks(0, [3.0, 3.0, 3.0, 3.0])  # 12
        light = _tasks(1, [1.0])  # 1
        result = balance_io_workloads([heavy, light])
        assert result.moves >= 1
        # First move: heavy's first task appended after light's tasks.
        moved = result.assignments[1][1]
        assert moved.owner == 0
        assert moved.job_index == 0

    def test_terminates_within_threshold(self):
        processes = [
            _tasks(0, [2.0] * 10),
            _tasks(1, [2.0] * 2),
            _tasks(2, [2.0] * 3),
            _tasks(3, [2.0] * 1),
        ]
        result = balance_io_workloads(processes)
        after = result.workloads_after
        assert max(after) <= 2.0 * min(after) + 1e-9

    def test_single_huge_task_does_not_oscillate(self):
        # One 100s task cannot be split; the loop must stop, not bounce.
        result = balance_io_workloads(
            [_tasks(0, [100.0, 0.5]), _tasks(1, [0.5])]
        )
        assert result.moves <= 2

    def test_donor_keeps_at_least_one_task(self):
        result = balance_io_workloads([_tasks(0, [10.0]), _tasks(1, [0.1])])
        assert len(result.assignments[0]) >= 1

    def test_total_work_conserved(self):
        processes = [
            _tasks(0, [5.0, 4.0, 3.0]),
            _tasks(1, [0.5]),
            _tasks(2, [1.0, 1.0]),
        ]
        result = balance_io_workloads(processes)
        assert sum(result.workloads_after) == pytest.approx(
            sum(result.workloads_before)
        )
        total_tasks = sum(len(a) for a in result.assignments)
        assert total_tasks == 6

    def test_imbalance_never_increases(self):
        processes = [
            _tasks(0, [8.0, 2.0, 1.0]),
            _tasks(1, [1.0]),
            _tasks(2, [2.0, 2.0]),
        ]
        result = balance_io_workloads(processes)
        assert result.imbalance_after <= result.imbalance_before + 1e-9

    def test_zero_workload_process_receives_work(self):
        result = balance_io_workloads([_tasks(0, [4.0, 4.0]), []])
        assert len(result.assignments[1]) >= 1

    def test_single_process_noop(self):
        result = balance_io_workloads([_tasks(0, [5.0, 1.0])])
        assert result.moves == 0

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            balance_io_workloads([_tasks(0, [1.0])], threshold=1.0)

    def test_custom_threshold(self):
        processes = [_tasks(0, [1.0] * 9), _tasks(1, [1.0] * 3)]
        loose = balance_io_workloads(processes, threshold=3.0)
        tight = balance_io_workloads(processes, threshold=1.5)
        assert tight.moves >= loose.moves
