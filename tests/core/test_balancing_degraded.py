"""I/O balancing when a donor rank's writes failed or were retried.

Satellite of the resilience layer: retry inflation and raw-write
fallbacks change the per-rank I/O durations the balancer sees (the
previous iteration's degraded dump), so the Section 3.4 loop must stay
well-behaved on those skewed inputs — tasks conserved, owners
preserved, imbalance never made worse.
"""

from collections import Counter

import pytest

from repro.apps import NyxModel
from repro.core.balancing import IoTaskRef, balance_io_workloads
from repro.framework import CampaignRunner, ours_config
from repro.resilience import (
    CompressionFault,
    FaultInjector,
    FaultPlan,
    StragglerFault,
    WriteErrorFault,
)
from repro.simulator import ClusterSpec


def _task_ids(assignments):
    return Counter(
        (t.owner, t.job_index) for tasks in assignments for t in tasks
    )


def _degraded_node(retry_factor):
    """Rank 0's writes were retried: durations inflated by the factor;
    rank 2's compression failed on some blocks: raw sizes, longer I/O."""
    return [
        [IoTaskRef(0, j, 0.4 * retry_factor) for j in range(4)],
        [IoTaskRef(1, j, 0.4) for j in range(4)],
        [
            IoTaskRef(2, 0, 0.4),
            IoTaskRef(2, 1, 3.2),  # raw-write fallback: ~8x the bytes
            IoTaskRef(2, 2, 0.4),
            IoTaskRef(2, 3, 0.4),
        ],
        [IoTaskRef(3, j, 0.4) for j in range(4)],
    ]


class TestBalancingDegradedInputs:
    @pytest.mark.parametrize("retry_factor", [2.0, 5.0, 20.0])
    def test_tasks_conserved_and_owners_preserved(self, retry_factor):
        tasks = _degraded_node(retry_factor)
        result = balance_io_workloads(tasks)
        assert _task_ids(result.assignments) == _task_ids(tasks)
        for process_tasks in result.assignments:
            for task in process_tasks:
                assert task.owner in (0, 1, 2, 3)

    @pytest.mark.parametrize("retry_factor", [2.0, 5.0, 20.0])
    def test_imbalance_never_worsens(self, retry_factor):
        result = balance_io_workloads(_degraded_node(retry_factor))
        assert result.imbalance_after <= result.imbalance_before
        assert result.moves > 0

    def test_degraded_durations_move_off_the_slow_rank(self):
        result = balance_io_workloads(_degraded_node(retry_factor=5.0))
        after = result.workloads_after
        # The inflated rank sheds work; nobody ends above the old max.
        assert after[0] < result.workloads_before[0]
        assert max(after) <= max(result.workloads_before)

    def test_exhausted_rank_with_zero_duration_tasks(self):
        # A rank whose every write failed contributes zero durations
        # (nothing was written); balancing must terminate and conserve.
        tasks = [
            [IoTaskRef(0, j, 0.0) for j in range(3)],
            [IoTaskRef(1, j, 1.0) for j in range(3)],
        ]
        result = balance_io_workloads(tasks)
        assert _task_ids(result.assignments) == _task_ids(tasks)

    def test_single_huge_degraded_task_terminates(self):
        tasks = [
            [IoTaskRef(0, 0, 50.0)],  # one stalled, retried monster
            [IoTaskRef(1, j, 0.1) for j in range(3)],
        ]
        result = balance_io_workloads(tasks)
        assert _task_ids(result.assignments) == _task_ids(tasks)


class TestCampaignBalancingUnderFaults:
    def test_plans_conserve_tasks_with_faults(self):
        plan = FaultPlan(
            write_error=WriteErrorFault(probability=0.25),
            compression=CompressionFault(probability=0.15),
            straggler=StragglerFault(ranks=(0,), io_factor=3.0),
        )
        config = ours_config()
        assert config.use_balancing
        runner = CampaignRunner(
            NyxModel(seed=5),
            ClusterSpec(num_nodes=2, processes_per_node=2),
            config,
            seed=5,
            injector=FaultInjector(plan, seed=5),
        )
        runner.run(6)
        outcomes = runner.last_outcomes
        assert outcomes is not None
        # Conservation across the cluster: every block some rank owns is
        # written exactly once — by its owner or by a balancing recipient
        # — degraded dumps included.
        owned = Counter()
        written = Counter()
        for rank, outcome in enumerate(outcomes):
            for b in outcome.plan.blocks:
                owned[(rank, b.job_index)] += 1
                if b.job_index not in outcome.plan.moved_out:
                    written[(rank, b.job_index)] += 1
            for ref in outcome.plan.moved_in:
                written[(ref.owner, ref.job_index)] += 1
        assert written == owned

    def test_balancing_report_consistent_with_degraded_dumps(self):
        plan = FaultPlan(
            straggler=StragglerFault(ranks=(0,), io_factor=4.0)
        )
        runner = CampaignRunner(
            NyxModel(seed=5),
            ClusterSpec(num_nodes=1, processes_per_node=4),
            ours_config(),
            seed=5,
            injector=FaultInjector(plan, seed=5),
        )
        result = runner.run(6)
        # The straggler was injected and the campaign still finished
        # with per-rank overheads recorded for every dump.
        assert dict(result.resilience.injected).get("straggler") == 1
        for record in result.dump_records():
            assert len(record.per_rank_overhead) == 4
