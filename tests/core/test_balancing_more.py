"""Additional balancing tests: ordering semantics and hypothesis sweep."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import IoTaskRef, balance_io_workloads


def _tasks(owner, durations):
    return [
        IoTaskRef(owner=owner, job_index=i, duration=float(d))
        for i, d in enumerate(durations)
    ]


class TestMoveSemantics:
    def test_moved_task_appended_after_receiver_tasks(self):
        heavy = _tasks(0, [5.0, 5.0, 5.0])
        light = _tasks(1, [1.0, 1.0])
        result = balance_io_workloads([heavy, light])
        receiver = result.assignments[1]
        # The receiver's own tasks keep their order; moved-in ones follow.
        own = [t for t in receiver if t.owner == 1]
        assert own == light
        moved = [t for t in receiver if t.owner == 0]
        assert receiver[: len(own)] == own
        assert receiver[len(own) :] == moved

    def test_donor_loses_from_the_front(self):
        heavy = _tasks(0, [9.0, 1.0, 1.0])
        light = _tasks(1, [0.5])
        result = balance_io_workloads([heavy, light])
        remaining = result.assignments[0]
        # The paper moves the *first* task of the heaviest process.
        assert remaining[0].job_index != 0 or len(remaining) == 3

    def test_three_way_cascades(self):
        processes = [
            _tasks(0, [4.0] * 6),
            _tasks(1, [1.0]),
            _tasks(2, [1.0]),
        ]
        result = balance_io_workloads(processes)
        after = result.workloads_after
        assert max(after) < 24.0  # work actually moved
        assert sum(len(a) for a in result.assignments) == 8

    def test_owner_preserved_through_moves(self):
        result = balance_io_workloads(
            [_tasks(0, [3.0, 3.0, 3.0, 3.0]), _tasks(1, [0.1])]
        )
        for assignment in result.assignments:
            for ref in assignment:
                assert ref.owner in (0, 1)
        moved = [t for t in result.assignments[1] if t.owner == 0]
        assert moved  # something moved and kept its provenance


@given(
    workloads=st.lists(
        st.lists(
            st.floats(min_value=0.01, max_value=10.0),
            min_size=1,
            max_size=8,
        ),
        min_size=1,
        max_size=6,
    ),
    threshold=st.floats(min_value=1.1, max_value=4.0),
)
@settings(max_examples=80, deadline=None)
def test_balancing_invariants(workloads, threshold):
    processes = [
        _tasks(owner, durations)
        for owner, durations in enumerate(workloads)
    ]
    total_before = sum(sum(t.duration for t in p) for p in processes)
    count_before = sum(len(p) for p in processes)
    result = balance_io_workloads(processes, threshold=threshold)
    # Conservation.
    total_after = sum(result.workloads_after)
    assert abs(total_after - total_before) < 1e-9
    assert sum(len(a) for a in result.assignments) == count_before
    # No task duplicated or lost.
    seen = sorted(
        (t.owner, t.job_index)
        for assignment in result.assignments
        for t in assignment
    )
    expected = sorted(
        (owner, i)
        for owner, durations in enumerate(workloads)
        for i in range(len(durations))
    )
    assert seen == expected
    # Never worse.
    assert result.imbalance_after <= result.imbalance_before + 1e-9
