"""Tests for the order-to-schedule executor, including partial orders
and the io_release extension used by the I/O balancer."""

import pytest

from repro.core import (
    Interval,
    Job,
    ProblemInstance,
    Schedule,
    schedule_orders,
)


def _instance(jobs, main=(), background=(), end=100.0):
    return ProblemInstance(
        begin=0.0,
        end=end,
        jobs=tuple(jobs),
        main_obstacles=tuple(main),
        background_obstacles=tuple(background),
    )


class TestOrders:
    def test_full_permutation_required_by_default(self):
        inst = _instance([Job(0, 1, 1), Job(1, 1, 1)])
        with pytest.raises(ValueError, match="permutation"):
            schedule_orders(inst, [0], [0], backfill=False)

    def test_duplicate_indices_rejected(self):
        inst = _instance([Job(0, 1, 1), Job(1, 1, 1)])
        with pytest.raises(ValueError):
            schedule_orders(inst, [0, 0], [0, 1], backfill=False)

    def test_invalid_index_rejected(self):
        inst = _instance([Job(0, 1, 1)])
        with pytest.raises(ValueError):
            schedule_orders(
                inst, [5], [5], backfill=False, require_complete=False
            )

    def test_partial_orders_allowed_when_requested(self):
        inst = _instance([Job(0, 1, 1), Job(1, 1, 1), Job(2, 1, 1)])
        schedule = schedule_orders(
            inst, [2, 0], [0, 2], backfill=False, require_complete=False
        )
        assert set(schedule.compression) == {0, 2}
        assert set(schedule.io) == {0, 2}

    def test_partial_orders_must_cover_same_jobs(self):
        inst = _instance([Job(0, 1, 1), Job(1, 1, 1)])
        with pytest.raises(ValueError, match="same job set"):
            schedule_orders(
                inst, [0], [1], backfill=False, require_complete=False
            )

    def test_different_io_order_respected(self):
        jobs = [Job(0, 1.0, 5.0), Job(1, 1.0, 0.5)]
        inst = _instance(jobs)
        schedule = schedule_orders(inst, [0, 1], [1, 0], backfill=False)
        # Job 1's I/O goes first even though job 0 compressed first.
        assert schedule.io[1].start < schedule.io[0].start

    def test_algorithm_name_recorded(self):
        inst = _instance([Job(0, 1, 1)])
        schedule = schedule_orders(
            inst, [0], [0], backfill=True, algorithm="custom"
        )
        assert schedule.algorithm == "custom"


class TestIoRelease:
    def test_release_delays_io(self):
        inst = _instance([Job(0, 0.0, 1.0, io_release=7.0)])
        schedule = schedule_orders(inst, [0], [0], backfill=True)
        assert schedule.io[0].start >= 7.0
        schedule.validate()

    def test_release_interacts_with_obstacles(self):
        inst = _instance(
            [Job(0, 0.0, 1.0, io_release=3.0)],
            background=[Interval(3.0, 5.0)],
        )
        schedule = schedule_orders(inst, [0], [0], backfill=True)
        assert schedule.io[0].start >= 5.0

    def test_zero_release_is_inert(self):
        a = _instance([Job(0, 1.0, 1.0)])
        b = _instance([Job(0, 1.0, 1.0, io_release=0.0)])
        sa = schedule_orders(a, [0], [0], backfill=True)
        sb = schedule_orders(b, [0], [0], backfill=True)
        assert sa.io[0] == sb.io[0]

    def test_negative_release_rejected(self):
        with pytest.raises(ValueError):
            Job(0, 1.0, 1.0, io_release=-1.0)

    def test_validator_catches_release_violation(self):
        inst = _instance([Job(0, 0.0, 1.0, io_release=5.0)])
        schedule = Schedule(
            instance=inst,
            compression={0: Interval(0, 0)},
            io={0: Interval(1, 2)},  # before the release
        )
        assert not schedule.is_valid()

    def test_ilp_respects_release(self):
        from repro.core import ilp_schedule

        inst = _instance([Job(0, 0.0, 1.0, io_release=6.0)])
        result = ilp_schedule(inst, time_limit=10.0)
        assert result.status == "optimal"
        assert result.objective == pytest.approx(7.0, abs=1e-4)


class TestBackfillSemantics:
    def test_backfill_never_moves_placed_tasks(self):
        # Place a long task, then a short one that backfills before it;
        # the long task's interval must be unchanged.
        inst = _instance(
            [Job(0, 3.0, 1.0), Job(1, 1.0, 1.0)],
            main=[Interval(1.0, 2.0)],
        )
        schedule = schedule_orders(inst, [0, 1], [0, 1], backfill=True)
        assert schedule.compression[0] == Interval(2.0, 5.0)
        assert schedule.compression[1] == Interval(0.0, 1.0)  # backfilled

    def test_no_backfill_is_fifo(self):
        inst = _instance(
            [Job(0, 3.0, 1.0), Job(1, 1.0, 1.0)],
            main=[Interval(1.0, 2.0)],
        )
        schedule = schedule_orders(inst, [0, 1], [0, 1], backfill=False)
        assert schedule.compression[1].start >= schedule.compression[0].end
