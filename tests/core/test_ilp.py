"""Tests for the Appendix A ILP solved with HiGHS."""

import pytest

from repro.core import (
    ALGORITHMS,
    Interval,
    Job,
    ProblemInstance,
    ilp_schedule,
)
from tests.conftest import random_instance


class TestIlpSmallInstances:
    def test_empty_instance(self):
        inst = ProblemInstance(begin=0.0, end=10.0, jobs=())
        result = ilp_schedule(inst)
        assert result.status == "optimal"
        assert result.objective == 0.0

    def test_single_job_no_obstacles(self):
        inst = ProblemInstance(
            begin=0.0, end=10.0, jobs=(Job(0, 2.0, 3.0),)
        )
        result = ilp_schedule(inst)
        assert result.status == "optimal"
        assert result.objective == pytest.approx(5.0, abs=1e-4)

    def test_two_jobs_pipeline(self):
        # Optimal: compress short first so I/O overlaps the long one.
        inst = ProblemInstance(
            begin=0.0,
            end=100.0,
            jobs=(Job(0, 5.0, 1.0), Job(1, 1.0, 5.0)),
        )
        result = ilp_schedule(inst)
        assert result.status == "optimal"
        # R1[0,1] B1[1,6]; R0[1,6] B0[6,7] -> makespan 7.
        assert result.objective == pytest.approx(7.0, abs=1e-4)

    def test_obstacle_forces_delay(self):
        inst = ProblemInstance(
            begin=0.0,
            end=100.0,
            jobs=(Job(0, 2.0, 2.0),),
            main_obstacles=(Interval(0.0, 3.0),),
        )
        result = ilp_schedule(inst)
        assert result.status == "optimal"
        # Compression cannot start before 3 -> ends 5, I/O ends 7.
        assert result.objective == pytest.approx(7.0, abs=1e-4)

    def test_figure1_optimum_not_worse_than_heuristics(self, figure1):
        result = ilp_schedule(figure1, time_limit=30.0)
        assert result.status == "optimal"
        best_heuristic = min(
            algo(figure1).io_makespan for algo in ALGORITHMS.values()
        )
        assert result.objective <= best_heuristic + 1e-4


class TestIlpDominatesHeuristics:
    def test_ilp_lower_bounds_heuristics_on_random_instances(self, rng):
        for _ in range(6):
            inst = random_instance(
                rng,
                num_jobs=4,
                num_main_obstacles=1,
                num_background_obstacles=1,
            )
            result = ilp_schedule(inst, time_limit=20.0)
            if result.status != "optimal":
                continue  # HiGHS may time out; never wrong when optimal
            for name, algo in ALGORITHMS.items():
                heuristic = algo(inst).io_makespan
                assert result.objective <= heuristic + 1e-4, name


class TestIlpReporting:
    def test_variable_and_constraint_counts_grow_quadratically(self):
        def counts(m):
            inst = ProblemInstance(
                begin=0.0,
                end=100.0,
                jobs=tuple(Job(i, 1.0, 1.0) for i in range(m)),
            )
            r = ilp_schedule(inst, time_limit=1.0)
            return r.num_variables, r.num_constraints

        v4, c4 = counts(4)
        v8, c8 = counts(8)
        # first-variables scale with m(m-1)/2 on both machines.
        assert v8 > v4
        assert c8 > c4
        assert v8 - v4 >= (8 * 7 - 4 * 3)  # 2 machines x pair growth
