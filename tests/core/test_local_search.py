"""Tests for the anytime local-search scheduler extension."""

import pytest
from hypothesis import given, settings

from repro.core import (
    ext_johnson_backfill,
    generation_list_schedule,
    local_search_schedule,
    lower_bound,
)
from tests.conftest import random_instance
from tests.core.test_properties import instances


class TestLocalSearch:
    def test_valid_on_figure1(self, figure1):
        schedule = local_search_schedule(figure1, time_budget_s=0.1)
        schedule.validate()
        assert schedule.algorithm == "LocalSearch"

    def test_optimal_on_figure1(self, figure1):
        # Figure 1's optimum is 12.0 and is reachable from Johnson order.
        schedule = local_search_schedule(figure1, time_budget_s=0.2)
        assert schedule.io_makespan <= 12.0 + 1e-9

    def test_never_worse_than_starting_orders(self, rng):
        for _ in range(10):
            inst = random_instance(rng, num_jobs=6)
            result = local_search_schedule(
                inst, time_budget_s=0.05, backfill=False
            )
            johnson = ext_johnson_backfill(inst).io_makespan
            generation = generation_list_schedule(inst).io_makespan
            # The no-backfill search starts from the better no-backfill
            # order; materialized without backfill it cannot exceed the
            # plain generation order (one of its seeds).
            assert result.io_makespan <= generation + 1e-6
            # And with backfilling it competes with ExtJohnson+BF.
            bf = local_search_schedule(inst, time_budget_s=0.05)
            assert bf.io_makespan <= max(johnson, generation) + 1e-6

    def test_respects_lower_bound(self, rng):
        for _ in range(10):
            inst = random_instance(rng)
            schedule = local_search_schedule(inst, time_budget_s=0.02)
            assert schedule.io_makespan >= lower_bound(inst) - 1e-6

    def test_empty_instance(self):
        from repro.core import ProblemInstance

        inst = ProblemInstance(begin=0.0, end=5.0, jobs=())
        schedule = local_search_schedule(inst)
        assert schedule.io_makespan == 0.0

    def test_single_job(self):
        from repro.core import Job, ProblemInstance

        inst = ProblemInstance(
            begin=0.0, end=5.0, jobs=(Job(0, 1.0, 1.0),)
        )
        schedule = local_search_schedule(inst, time_budget_s=0.01)
        schedule.validate()
        assert schedule.io_makespan == pytest.approx(2.0)

    def test_budget_roughly_respected(self, rng):
        import time

        inst = random_instance(rng, num_jobs=8)
        t0 = time.perf_counter()
        local_search_schedule(inst, time_budget_s=0.05)
        elapsed = time.perf_counter() - t0
        assert elapsed < 1.0  # generous: budget + one evaluation round


@given(inst=instances())
@settings(max_examples=25, deadline=None)
def test_local_search_always_valid(inst):
    schedule = local_search_schedule(inst, time_budget_s=0.01)
    schedule.validate()
