"""Unit tests for the scheduling data model and validator."""

import pytest

from repro.core import (
    Interval,
    Job,
    ProblemInstance,
    Schedule,
    ScheduleError,
)


class TestInterval:
    def test_duration(self):
        assert Interval(1.0, 3.5).duration == 2.5

    def test_rejects_reversed(self):
        with pytest.raises(ValueError):
            Interval(2.0, 1.0)

    def test_zero_length_allowed(self):
        assert Interval(1.0, 1.0).duration == 0.0

    def test_overlap_strict(self):
        assert Interval(0, 2).overlaps(Interval(1, 3))

    def test_touching_do_not_overlap(self):
        assert not Interval(0, 2).overlaps(Interval(2, 3))
        assert not Interval(2, 3).overlaps(Interval(0, 2))

    def test_disjoint(self):
        assert not Interval(0, 1).overlaps(Interval(5, 6))

    def test_shifted(self):
        assert Interval(1, 2).shifted(10) == Interval(11, 12)

    def test_contains_point(self):
        iv = Interval(1.0, 2.0)
        assert iv.contains_point(1.0)
        assert iv.contains_point(1.5)
        assert iv.contains_point(2.0)
        assert not iv.contains_point(2.5)

    def test_ordering(self):
        assert Interval(0, 1) < Interval(1, 2)


class TestJob:
    def test_rejects_negative_durations(self):
        with pytest.raises(ValueError):
            Job(0, -1.0, 1.0)
        with pytest.raises(ValueError):
            Job(0, 1.0, -1.0)

    def test_zero_durations_allowed(self):
        job = Job(0, 0.0, 0.0)
        assert job.compression_time == 0.0

    def test_label_default(self):
        assert Job(0, 1.0, 1.0).label == ""


class TestProblemInstance:
    def test_length(self, figure1):
        assert figure1.length == 12.0

    def test_totals(self, figure1):
        assert figure1.total_compression_time() == pytest.approx(8.0)
        assert figure1.total_io_time() == pytest.approx(7.0)

    def test_rejects_end_before_begin(self):
        with pytest.raises(ValueError):
            ProblemInstance(begin=1.0, end=0.0, jobs=())

    def test_rejects_bad_job_indices(self):
        with pytest.raises(ValueError):
            ProblemInstance(begin=0.0, end=1.0, jobs=(Job(3, 1.0, 1.0),))

    def test_rejects_overlapping_obstacles(self):
        with pytest.raises(ValueError):
            ProblemInstance(
                begin=0.0,
                end=10.0,
                jobs=(),
                main_obstacles=(Interval(0, 5), Interval(4, 6)),
            )

    def test_obstacles_sorted(self):
        inst = ProblemInstance(
            begin=0.0,
            end=10.0,
            jobs=(),
            main_obstacles=(Interval(5, 6), Interval(1, 2)),
        )
        assert inst.main_obstacles[0].start == 1

    def test_with_jobs(self, figure1):
        smaller = figure1.with_jobs((Job(0, 1.0, 1.0),))
        assert smaller.num_jobs == 1
        assert figure1.num_jobs == 4  # original untouched


class TestScheduleValidation:
    def _schedule(self, inst, compression, io):
        return Schedule(instance=inst, compression=compression, io=io)

    def test_valid_minimal(self):
        inst = ProblemInstance(
            begin=0.0, end=10.0, jobs=(Job(0, 1.0, 2.0),)
        )
        sched = self._schedule(
            inst, {0: Interval(0, 1)}, {0: Interval(1, 3)}
        )
        sched.validate()
        assert sched.is_valid()

    def test_missing_job_rejected(self, figure1):
        sched = self._schedule(figure1, {}, {})
        with pytest.raises(ScheduleError):
            sched.validate()

    def test_duration_mismatch_rejected(self):
        inst = ProblemInstance(
            begin=0.0, end=10.0, jobs=(Job(0, 1.0, 2.0),)
        )
        sched = self._schedule(
            inst, {0: Interval(0, 2)}, {0: Interval(2, 4)}
        )
        with pytest.raises(ScheduleError, match="does not match duration"):
            sched.validate()

    def test_io_before_compression_rejected(self):
        inst = ProblemInstance(
            begin=0.0, end=10.0, jobs=(Job(0, 2.0, 1.0),)
        )
        sched = self._schedule(
            inst, {0: Interval(0, 2)}, {0: Interval(1, 2)}
        )
        with pytest.raises(ScheduleError, match="before"):
            sched.validate()

    def test_obstacle_overlap_rejected(self):
        inst = ProblemInstance(
            begin=0.0,
            end=10.0,
            jobs=(Job(0, 2.0, 1.0),),
            main_obstacles=(Interval(1, 2),),
        )
        sched = self._schedule(
            inst, {0: Interval(0.5, 2.5)}, {0: Interval(3, 4)}
        )
        with pytest.raises(ScheduleError, match="obstacle"):
            sched.validate()

    def test_task_overlap_rejected(self):
        inst = ProblemInstance(
            begin=0.0,
            end=10.0,
            jobs=(Job(0, 2.0, 1.0), Job(1, 2.0, 1.0)),
        )
        sched = self._schedule(
            inst,
            {0: Interval(0, 2), 1: Interval(1, 3)},
            {0: Interval(3, 4), 1: Interval(4, 5)},
        )
        with pytest.raises(ScheduleError, match="overlap"):
            sched.validate()

    def test_start_before_begin_rejected(self):
        inst = ProblemInstance(
            begin=5.0, end=10.0, jobs=(Job(0, 1.0, 1.0),)
        )
        sched = self._schedule(
            inst, {0: Interval(4, 5)}, {0: Interval(5, 6)}
        )
        with pytest.raises(ScheduleError, match="before iteration"):
            sched.validate()

    def test_back_to_back_tasks_valid(self):
        inst = ProblemInstance(
            begin=0.0,
            end=10.0,
            jobs=(Job(0, 2.0, 1.0), Job(1, 2.0, 1.0)),
        )
        sched = self._schedule(
            inst,
            {0: Interval(0, 2), 1: Interval(2, 4)},
            {0: Interval(2, 3), 1: Interval(4, 5)},
        )
        sched.validate()


class TestScheduleMetrics:
    def test_io_makespan_empty(self):
        inst = ProblemInstance(begin=0.0, end=10.0, jobs=())
        assert Schedule(instance=inst).io_makespan == 0.0

    def test_overall_never_below_length(self):
        inst = ProblemInstance(
            begin=0.0, end=10.0, jobs=(Job(0, 1.0, 1.0),)
        )
        sched = Schedule(
            instance=inst,
            compression={0: Interval(0, 1)},
            io={0: Interval(1, 2)},
        )
        assert sched.io_makespan == 2.0
        assert sched.overall_time == 10.0
        assert sched.overhead == 0.0

    def test_overhead_counts_spill(self):
        inst = ProblemInstance(
            begin=0.0, end=3.0, jobs=(Job(0, 2.0, 2.0),)
        )
        sched = Schedule(
            instance=inst,
            compression={0: Interval(0, 2)},
            io={0: Interval(2, 4)},
        )
        assert sched.overhead == pytest.approx(1.0)

    def test_tasks_sorted_by_start(self, figure1):
        from repro.core import ext_johnson

        sched = ext_johnson(figure1)
        tasks = sched.tasks()
        starts = [t.interval.start for t in tasks]
        assert starts == sorted(starts)
        assert len(tasks) == 8

    def test_begin_offset_respected(self):
        inst = ProblemInstance(
            begin=100.0, end=110.0, jobs=(Job(0, 1.0, 1.0),)
        )
        sched = Schedule(
            instance=inst,
            compression={0: Interval(100, 101)},
            io={0: Interval(101, 102)},
        )
        assert sched.io_makespan == pytest.approx(2.0)
