"""Brute-force oracle tests on tiny instances.

For up to four jobs, exhaustively trying every (compression order, I/O
order) pair under the no-backfill placement rule gives the optimal
*list-schedulable* makespan.  That oracle sandwiches everything else:
``lower_bound <= ILP optimum <= oracle`` and every heuristic ``>= ILP``.
"""

import pytest

from repro.core import (
    ALGORITHMS,
    exhaustive_schedule,
    ilp_schedule,
    local_search_schedule,
    lower_bound,
)
from tests.conftest import random_instance


def brute_force_best(instance) -> float:
    """Optimal no-backfill list-schedule makespan over all order pairs."""
    return exhaustive_schedule(instance).io_makespan


@pytest.fixture
def small_instances(rng):
    return [
        random_instance(
            rng,
            num_jobs=int(rng.integers(2, 5)),
            num_main_obstacles=int(rng.integers(0, 3)),
            num_background_obstacles=int(rng.integers(0, 3)),
        )
        for _ in range(6)
    ]


class TestOracleSandwich:
    def test_heuristics_never_beat_ilp(self, small_instances):
        for inst in small_instances:
            result = ilp_schedule(inst, time_limit=15.0)
            if result.status != "optimal":
                continue
            for name, algo in ALGORITHMS.items():
                assert (
                    algo(inst).io_makespan >= result.objective - 1e-4
                ), name

    def test_ilp_never_beaten_by_oracle(self, small_instances):
        # The ILP can place tasks anywhere (not just list schedules), so
        # its optimum is <= the brute-force list-schedule optimum.
        for inst in small_instances:
            result = ilp_schedule(inst, time_limit=15.0)
            if result.status != "optimal":
                continue
            oracle = brute_force_best(inst)
            assert result.objective <= oracle + 1e-4

    def test_lower_bound_below_oracle(self, small_instances):
        for inst in small_instances:
            assert lower_bound(inst) <= brute_force_best(inst) + 1e-6

    def test_two_lists_matches_oracle_often(self, small_instances):
        # TwoListsGreedy explores order pairs incrementally; on tiny
        # instances it should reach the oracle most of the time.
        hits = 0
        for inst in small_instances:
            oracle = brute_force_best(inst)
            achieved = ALGORITHMS["TwoListsGreedy"](inst).io_makespan
            assert achieved >= oracle - 1e-9
            if achieved <= oracle + 1e-6:
                hits += 1
        assert hits >= len(small_instances) // 2

    def test_local_search_near_oracle(self, small_instances):
        for inst in small_instances:
            oracle = brute_force_best(inst)
            achieved = local_search_schedule(
                inst, time_budget_s=0.1, backfill=False
            ).io_makespan
            assert achieved <= oracle * 1.2 + 1e-6


class TestKnownOptima:
    def test_figure1_oracle_is_12(self, figure1):
        # With backfilling ExtJohnson+BF reaches 12.0; the no-backfill
        # oracle must also reach it (some order achieves the packing).
        assert brute_force_best(figure1) == pytest.approx(12.0)

    def test_two_job_pipeline_oracle(self):
        from repro.core import Job, ProblemInstance

        inst = ProblemInstance(
            begin=0.0,
            end=100.0,
            jobs=(Job(0, 5.0, 1.0), Job(1, 1.0, 5.0)),
        )
        assert brute_force_best(inst) == pytest.approx(7.0)
        result = ilp_schedule(inst, time_limit=10.0)
        assert result.objective == pytest.approx(7.0, abs=1e-4)


class TestExhaustiveApi:
    def test_same_order_restriction_never_better(self, rng):
        for _ in range(4):
            inst = random_instance(rng, num_jobs=3)
            both = exhaustive_schedule(inst).io_makespan
            shared = exhaustive_schedule(
                inst, same_order=True
            ).io_makespan
            assert both <= shared + 1e-9

    def test_result_validates(self, rng):
        inst = random_instance(rng, num_jobs=3)
        schedule = exhaustive_schedule(inst)
        schedule.validate()
        assert schedule.algorithm == "Exhaustive"

    def test_too_many_jobs_rejected(self, rng):
        inst = random_instance(rng, num_jobs=8)
        with pytest.raises(ValueError, match="limited"):
            exhaustive_schedule(inst)

    def test_zero_jobs(self):
        from repro.core import ProblemInstance

        inst = ProblemInstance(begin=0.0, end=1.0, jobs=())
        assert exhaustive_schedule(inst).io_makespan == 0.0
