"""Tests for history-based iteration prediction."""

import pytest

from repro.core import Interval, IterationHistory, IterationRecord, Job


def _record(length=10.0, ratios=(16.0, 12.0)):
    return IterationRecord(
        length=length,
        main_obstacles=(Interval(2.0, 3.0),),
        background_obstacles=(Interval(4.0, 5.0),),
        io_durations=(0.5, 0.7),
        compression_ratios=ratios,
    )


class TestIterationHistory:
    def test_empty_history_raises(self):
        history = IterationHistory()
        with pytest.raises(LookupError):
            history.predict_instance(0.0, ())

    def test_prediction_reanchors_intervals(self):
        history = IterationHistory()
        history.observe(_record())
        jobs = (Job(0, 1.0, 1.0),)
        inst = history.predict_instance(begin=100.0, jobs=jobs)
        assert inst.begin == 100.0
        assert inst.end == 110.0
        assert inst.main_obstacles[0] == Interval(102.0, 103.0)
        assert inst.background_obstacles[0] == Interval(104.0, 105.0)

    def test_uses_most_recent_record(self):
        history = IterationHistory()
        history.observe(_record(length=10.0))
        history.observe(_record(length=20.0))
        inst = history.predict_instance(0.0, ())
        assert inst.length == 20.0

    def test_window_discards_old_records(self):
        history = IterationHistory(window=2)
        for length in (1.0, 2.0, 3.0, 4.0):
            history.observe(_record(length=length))
        assert len(history.records) == 2
        assert history.records[0].length == 3.0

    def test_predicted_ratio_known_block(self):
        history = IterationHistory()
        history.observe(_record(ratios=(16.0, 12.0)))
        assert history.predicted_ratio(1, default=8.0) == 12.0

    def test_predicted_ratio_unknown_block_uses_default(self):
        history = IterationHistory()
        history.observe(_record(ratios=(16.0,)))
        assert history.predicted_ratio(5, default=8.0) == 8.0

    def test_predicted_ratio_no_history_uses_default(self):
        history = IterationHistory()
        assert history.predicted_ratio(0, default=8.0) == 8.0

    def test_predicted_io_durations(self):
        history = IterationHistory()
        assert history.predicted_io_durations() == ()
        history.observe(_record())
        assert history.predicted_io_durations() == (0.5, 0.7)
