"""Property-based tests: every algorithm yields valid schedules on
arbitrary instances, and structural invariants hold."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ALGORITHMS,
    Interval,
    Job,
    ProblemInstance,
    johnson_order,
)

durations = st.floats(
    min_value=0.0, max_value=10.0, allow_nan=False, allow_infinity=False
)


@st.composite
def instances(draw):
    num_jobs = draw(st.integers(min_value=0, max_value=7))
    jobs = tuple(
        Job(i, draw(durations), draw(durations)) for i in range(num_jobs)
    )
    length = draw(st.floats(min_value=1.0, max_value=50.0))

    def obstacle_set():
        count = draw(st.integers(min_value=0, max_value=3))
        points = sorted(
            draw(
                st.lists(
                    st.floats(min_value=0.0, max_value=length),
                    min_size=2 * count,
                    max_size=2 * count,
                )
            )
        )
        return tuple(
            Interval(points[2 * i], points[2 * i + 1])
            for i in range(count)
            if points[2 * i + 1] > points[2 * i]
        )

    return ProblemInstance(
        begin=0.0,
        end=length,
        jobs=jobs,
        main_obstacles=obstacle_set(),
        background_obstacles=obstacle_set(),
    )


@given(inst=instances())
@settings(max_examples=60, deadline=None)
def test_all_algorithms_produce_valid_schedules(inst):
    for algo in ALGORITHMS.values():
        schedule = algo(inst)
        schedule.validate()


@given(inst=instances())
@settings(max_examples=60, deadline=None)
def test_backfill_never_worse_than_plain_johnson(inst):
    plain = ALGORITHMS["ExtJohnson"](inst)
    backfilled = ALGORITHMS["ExtJohnson+BF"](inst)
    assert backfilled.io_makespan <= plain.io_makespan + 1e-6


@given(inst=instances())
@settings(max_examples=60, deadline=None)
def test_backfill_never_worse_than_plain_generation(inst):
    plain = ALGORITHMS["GenerationListSchedule"](inst)
    backfilled = ALGORITHMS["GenerationListSchedule+BF"](inst)
    assert backfilled.io_makespan <= plain.io_makespan + 1e-6


@given(inst=instances())
@settings(max_examples=40, deadline=None)
def test_makespan_at_least_critical_path(inst):
    # No schedule can beat the trivial lower bound: for any job,
    # compression + I/O time; and total I/O must fit on one machine.
    for algo in ALGORITHMS.values():
        schedule = algo(inst)
        lower = max(
            (j.compression_time + j.io_time for j in inst.jobs),
            default=0.0,
        )
        lower = max(lower, inst.total_io_time())
        assert schedule.io_makespan >= lower - 1e-6


@given(inst=instances())
@settings(max_examples=40, deadline=None)
def test_johnson_order_is_permutation(inst):
    order = johnson_order(inst.jobs)
    assert sorted(order) == list(range(inst.num_jobs))


@given(inst=instances())
@settings(max_examples=30, deadline=None)
def test_greedy_stays_competitive_with_generation_order(inst):
    # OneListGreedy is not *guaranteed* to beat the generation order: a
    # locally best partial insertion can lock in a worse final order
    # (hypothesis found such instances).  The defensible invariant is
    # that it never degrades badly — in practice it is almost always
    # at least as good (asserted exactly on fixed instances in
    # test_algorithms).
    generation = ALGORITHMS["GenerationListSchedule"](inst).io_makespan
    one = ALGORITHMS["OneListGreedy"](inst).io_makespan
    assert one <= generation * 1.25 + 1e-6
