"""Concurrency tests: the algorithm registry and solve() under threads.

The scheduling service dispatches ``solve()`` from a worker pool while
other callers may register or remove experimental algorithms, so the
registry must never expose a torn state, and the query functions must
return consistent snapshots.
"""

from __future__ import annotations

import threading

import pytest

from repro.core import (
    ALGORITHMS,
    DEFAULT_ALGORITHM,
    REGISTRY,
    AlgorithmInfo,
    ext_johnson,
    get_algorithm,
    get_algorithm_info,
    list_algorithms,
    register_algorithm,
    solve,
    unregister_algorithm,
)
from tests.conftest import figure1_instance


@pytest.fixture(autouse=True)
def _clean_registry():
    """Remove any experimental entries a test (or a crash) left behind."""
    yield
    for name in list(REGISTRY):
        if name.startswith("test-"):
            unregister_algorithm(name)


class TestRegistryMutation:
    def test_register_and_unregister(self):
        info = AlgorithmInfo("test-alias", ext_johnson)
        register_algorithm(info)
        assert get_algorithm_info("test-alias") is info
        assert get_algorithm("test-alias") is ext_johnson
        assert "test-alias" in list_algorithms()
        unregister_algorithm("test-alias")
        assert "test-alias" not in list_algorithms(include_exact=True)

    def test_exact_entries_stay_out_of_legacy_table(self):
        register_algorithm(
            AlgorithmInfo("test-exact", ext_johnson, exact=True)
        )
        assert "test-exact" not in ALGORITHMS
        assert "test-exact" in list_algorithms(include_exact=True)
        assert "test-exact" not in list_algorithms()
        unregister_algorithm("test-exact")

    def test_duplicate_rejected_unless_replace(self):
        register_algorithm(AlgorithmInfo("test-dup", ext_johnson))
        with pytest.raises(ValueError, match="already registered"):
            register_algorithm(AlgorithmInfo("test-dup", ext_johnson))
        register_algorithm(
            AlgorithmInfo("test-dup", ext_johnson), replace=True
        )
        unregister_algorithm("test-dup")

    def test_builtins_protected(self):
        with pytest.raises(ValueError, match="built-in"):
            register_algorithm(
                AlgorithmInfo("ExtJohnson", ext_johnson), replace=True
            )
        with pytest.raises(ValueError, match="built-in"):
            unregister_algorithm(DEFAULT_ALGORITHM)

    def test_unknown_unregister_names_known(self):
        with pytest.raises(KeyError, match="unknown algorithm"):
            unregister_algorithm("test-never-registered")

    def test_non_info_rejected(self):
        with pytest.raises(TypeError):
            register_algorithm(ext_johnson)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            register_algorithm(AlgorithmInfo("", ext_johnson))


class TestThreadedStress:
    def test_concurrent_register_solve_list(self):
        """Registry churn + concurrent solves: no torn state, no lost
        updates, every solve sees a working algorithm."""
        instance = figure1_instance()
        errors: list[BaseException] = []
        start = threading.Barrier(12)
        stop = threading.Event()

        def churn(slot: int):
            try:
                start.wait()
                for round_ in range(60):
                    name = f"test-churn-{slot}-{round_}"
                    register_algorithm(AlgorithmInfo(name, ext_johnson))
                    result = solve(instance, name)
                    assert result.schedule is not None
                    unregister_algorithm(name)
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        def solver():
            try:
                start.wait()
                while not stop.is_set():
                    result = solve(instance, DEFAULT_ALGORITHM)
                    assert result.makespan is not None
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        def lister():
            try:
                start.wait()
                while not stop.is_set():
                    names = list_algorithms(include_exact=True)
                    # The built-ins are always present in every snapshot.
                    assert "ExtJohnson" in names and "ILP" in names
                    for name in names:
                        try:
                            get_algorithm_info(name)
                        except KeyError:
                            pass  # unregistered between snapshot and get
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        churners = [
            threading.Thread(target=churn, args=(slot,)) for slot in range(4)
        ]
        readers = [threading.Thread(target=solver) for _ in range(4)]
        readers += [threading.Thread(target=lister) for _ in range(4)]
        for t in churners + readers:
            t.start()
        for t in churners:
            t.join(timeout=60)
        stop.set()
        for t in readers:
            t.join(timeout=60)
        assert not errors, errors[0]
        leftovers = [n for n in REGISTRY if n.startswith("test-churn")]
        assert not leftovers, f"lost unregisters: {leftovers}"
