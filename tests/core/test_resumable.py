"""Tests for resumable (preemptive) scheduling semantics."""

import pytest
from hypothesis import given, settings

from repro.core import (
    ALGORITHMS,
    Interval,
    Job,
    ProblemInstance,
    ext_johnson_backfill,
)
from repro.core.resumable import (
    preemption_cost,
    resumable_schedule,
)
from tests.conftest import random_instance
from tests.core.test_properties import instances


class TestResumableMechanics:
    def test_task_splits_across_obstacle(self):
        inst = ProblemInstance(
            begin=0.0,
            end=10.0,
            jobs=(Job(0, 4.0, 1.0),),
            main_obstacles=(Interval(2.0, 3.0),),
        )
        schedule = resumable_schedule(inst)
        pieces = schedule.compression[0]
        assert len(pieces) == 2
        assert pieces[0] == Interval(0.0, 2.0)
        assert pieces[1] == Interval(3.0, 5.0)

    def test_pieces_sum_to_duration(self, rng):
        for _ in range(20):
            inst = random_instance(rng)
            schedule = resumable_schedule(inst)
            for j, job in enumerate(inst.jobs):
                total = sum(
                    p.duration for p in schedule.compression[j]
                )
                assert total == pytest.approx(
                    job.compression_time, abs=1e-9
                )
                total_io = sum(p.duration for p in schedule.io[j])
                assert total_io == pytest.approx(job.io_time, abs=1e-9)

    def test_pieces_avoid_obstacles(self, rng):
        for _ in range(20):
            inst = random_instance(rng)
            schedule = resumable_schedule(inst)
            for pieces in schedule.compression.values():
                for piece in pieces:
                    for obs in inst.main_obstacles:
                        if obs.duration > 1e-9:
                            assert not piece.overlaps(obs)

    def test_io_after_compression(self, rng):
        for _ in range(10):
            inst = random_instance(rng)
            schedule = resumable_schedule(inst)
            for j in range(inst.num_jobs):
                if schedule.io[j]:
                    assert (
                        schedule.io[j][0].start
                        >= schedule.compression[j][-1].end - 1e-9
                    )

    def test_no_obstacles_single_piece(self):
        inst = ProblemInstance(
            begin=0.0, end=10.0, jobs=(Job(0, 3.0, 1.0),)
        )
        schedule = resumable_schedule(inst)
        assert len(schedule.compression[0]) == 1

    def test_io_release_respected(self):
        inst = ProblemInstance(
            begin=0.0,
            end=10.0,
            jobs=(Job(0, 0.0, 1.0, io_release=4.0),),
        )
        schedule = resumable_schedule(inst)
        assert schedule.io[0][0].start >= 4.0


class TestResumableDominance:
    def test_figure1_resumable_not_worse(self, figure1):
        resumable = resumable_schedule(figure1).io_makespan
        non_resumable = ext_johnson_backfill(figure1).io_makespan
        assert resumable <= non_resumable + 1e-9

    def test_preemption_cost_nonnegative(self, rng):
        for _ in range(15):
            inst = random_instance(rng)
            makespan = ext_johnson_backfill(inst).io_makespan
            assert preemption_cost(inst, makespan) >= 0.0

    def test_preemption_cost_zero_without_obstacles(self):
        inst = ProblemInstance(
            begin=0.0,
            end=100.0,
            jobs=(Job(0, 1.0, 2.0), Job(1, 2.0, 1.0)),
        )
        makespan = ext_johnson_backfill(inst).io_makespan
        # Same order, no obstacles: resumable == non-resumable.
        assert preemption_cost(inst, makespan) == pytest.approx(0.0)

    def test_empty_instance(self):
        inst = ProblemInstance(begin=0.0, end=5.0, jobs=())
        schedule = resumable_schedule(inst)
        assert schedule.io_makespan == 0.0
        assert preemption_cost(inst, 0.0) == 0.0


@given(inst=instances())
@settings(max_examples=50, deadline=None)
def test_resumable_lower_bounds_same_order_heuristics(inst):
    # Resumable Johnson-order lower-bounds the non-resumable Johnson
    # heuristics (same order, relaxed semantics).
    resumable = resumable_schedule(inst).io_makespan
    for name in ("ExtJohnson", "ExtJohnson+BF"):
        assert resumable <= ALGORITHMS[name](inst).io_makespan + 1e-6
