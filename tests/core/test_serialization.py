"""Tests for instance/schedule JSON serialization."""

import pytest
from hypothesis import given, settings

from repro.core import (
    ext_johnson_backfill,
    instance_from_json,
    instance_to_json,
    schedule_from_json,
    schedule_to_json,
)
from tests.conftest import random_instance
from tests.core.test_properties import instances


class TestInstanceRoundTrip:
    def test_figure1(self, figure1):
        restored = instance_from_json(instance_to_json(figure1))
        assert restored == figure1

    def test_random(self, rng):
        for _ in range(10):
            inst = random_instance(rng)
            assert instance_from_json(instance_to_json(inst)) == inst

    def test_io_release_preserved(self):
        from repro.core import Job, ProblemInstance

        inst = ProblemInstance(
            begin=0.0,
            end=5.0,
            jobs=(Job(0, 1.0, 1.0, label="x", io_release=2.5),),
        )
        restored = instance_from_json(instance_to_json(inst))
        assert restored.jobs[0].io_release == 2.5
        assert restored.jobs[0].label == "x"


class TestScheduleRoundTrip:
    def test_schedule_round_trips_and_revalidates(self, figure1):
        schedule = ext_johnson_backfill(figure1)
        restored = schedule_from_json(schedule_to_json(schedule))
        restored.validate()
        assert restored.algorithm == "ExtJohnson+BF"
        assert restored.io_makespan == pytest.approx(
            schedule.io_makespan
        )
        assert restored.compression == schedule.compression
        assert restored.io == schedule.io

    def test_garbage_rejected(self):
        with pytest.raises(Exception):
            schedule_from_json("not json at all")


@given(inst=instances())
@settings(max_examples=40, deadline=None)
def test_serialization_property(inst):
    assert instance_from_json(instance_to_json(inst)) == inst
    schedule = ext_johnson_backfill(inst)
    restored = schedule_from_json(schedule_to_json(schedule))
    restored.validate()
    assert restored.io_makespan == pytest.approx(schedule.io_makespan)
