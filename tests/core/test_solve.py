"""The solve() facade: parity with direct calls, metadata, tracing."""

import pytest

from repro.core import (
    ALGORITHMS,
    DEFAULT_ALGORITHM,
    SolveResult,
    exhaustive_schedule,
    get_algorithm_info,
    ilp_schedule,
    list_algorithms,
    schedule_stats,
    solve,
)
from repro.telemetry import Tracer
from tests.conftest import figure1_instance, random_instance


class TestHeuristicParity:
    @pytest.mark.parametrize("name", list_algorithms())
    def test_figure1_matches_direct_call(self, name):
        instance = figure1_instance()
        via_facade = solve(instance, name)
        direct = ALGORITHMS[name](instance)
        assert via_facade.schedule.compression == direct.compression
        assert via_facade.schedule.io == direct.io
        assert via_facade.makespan == direct.io_makespan
        assert via_facade.status == "ok"
        assert via_facade.algorithm == name

    @pytest.mark.parametrize("name", list_algorithms())
    def test_random_instances_match_direct_call(self, name, rng):
        for _ in range(5):
            instance = random_instance(rng)
            via_facade = solve(instance, name)
            direct = ALGORITHMS[name](instance)
            assert via_facade.schedule.compression == direct.compression
            assert via_facade.schedule.io == direct.io


class TestExactSolvers:
    def test_ilp_returns_optimal_figure1(self):
        result = solve(figure1_instance(), "ILP", time_limit=30.0)
        assert result.status == "optimal"
        assert result.makespan == pytest.approx(12.0)
        direct = ilp_schedule(figure1_instance(), time_limit=30.0)
        assert result.schedule.io == direct.schedule.io

    def test_ilp_detail_carries_problem_size(self):
        result = solve(figure1_instance(), "ILP", time_limit=30.0)
        direct = ilp_schedule(figure1_instance(), time_limit=30.0)
        assert result.detail["num_variables"] == direct.num_variables
        assert result.detail["num_constraints"] == direct.num_constraints
        assert result.detail["objective"] == pytest.approx(
            direct.objective
        )

    def test_heuristic_detail_empty(self):
        assert solve(figure1_instance()).detail == {}

    def test_exhaustive_matches_direct(self):
        instance = figure1_instance()
        result = solve(instance, "Exhaustive")
        direct = exhaustive_schedule(instance)
        assert result.schedule.io == direct.io
        assert result.makespan == pytest.approx(12.0)

    def test_heuristic_never_beats_exact(self, rng):
        for _ in range(3):
            instance = random_instance(rng, num_jobs=4)
            exact = solve(instance, "Exhaustive")
            heuristic = solve(instance, DEFAULT_ALGORITHM)
            assert heuristic.makespan >= exact.makespan - 1e-9


class TestResultShape:
    def test_wall_time_measured(self):
        result = solve(figure1_instance())
        assert result.wall_time >= 0.0

    def test_stats_lazy_and_correct(self):
        result = solve(figure1_instance())
        assert result._stats is None  # not computed until asked for
        stats = result.stats
        assert stats == schedule_stats(result.schedule)
        assert result.stats is stats  # cached after first access

    def test_default_algorithm(self):
        assert solve(figure1_instance()).algorithm == DEFAULT_ALGORITHM

    def test_unknown_algorithm_raises(self):
        with pytest.raises(KeyError, match="unknown algorithm"):
            solve(figure1_instance(), "NoSuchSolver")

    def test_result_is_dataclass_with_status(self):
        result = solve(figure1_instance())
        assert isinstance(result, SolveResult)
        assert result.status == "ok"


class TestRegistryMetadata:
    def test_heuristics_are_inexact_and_untimed(self):
        for name in list_algorithms():
            info = get_algorithm_info(name)
            assert info.name == name
            assert not info.exact
            assert not info.needs_time_limit

    def test_ilp_metadata(self):
        info = get_algorithm_info("ILP")
        assert info.exact and info.needs_time_limit

    def test_exhaustive_metadata(self):
        info = get_algorithm_info("Exhaustive")
        assert info.exact and not info.needs_time_limit

    def test_list_algorithms_include_exact(self):
        names = list_algorithms(include_exact=True)
        assert set(list_algorithms()) < set(names)
        assert {"ILP", "Exhaustive"} <= set(names)

    def test_exact_names_hidden_by_default(self):
        assert "ILP" not in list_algorithms()
        assert "Exhaustive" not in list_algorithms()


class TestTracing:
    def test_solve_emits_solve_span_and_planned_layout(self):
        tracer = Tracer()
        result = solve(figure1_instance(), tracer=tracer)
        names = [s.name for s in tracer.recorder.spans]
        assert names.count("solve") == 1
        assert "compute" in names
        assert "compress.planned" in names
        assert "write.planned" in names
        (span,) = [s for s in tracer.recorder.spans if s.name == "solve"]
        assert span.attrs["algorithm"] == DEFAULT_ALGORITHM
        assert span.attrs["makespan"] == result.makespan

    def test_untraced_solve_records_nothing(self):
        # The default NULL_TRACER has no recorder to pollute.
        result = solve(figure1_instance())
        assert result.schedule is not None
