"""Unit tests for obstacle-aware earliest-fit placement."""

import pytest

from repro.core import Interval
from repro.core.timeline import MachineTimeline


class TestEarliestFit:
    def test_empty_machine(self):
        tl = MachineTimeline(0.0)
        assert tl.earliest_fit(2.0, 0.0) == 0.0

    def test_respects_not_before(self):
        tl = MachineTimeline(0.0)
        assert tl.earliest_fit(2.0, 5.0) == 5.0

    def test_respects_begin(self):
        tl = MachineTimeline(3.0)
        assert tl.earliest_fit(1.0, 0.0) == 3.0

    def test_skips_obstacle(self):
        tl = MachineTimeline(0.0, (Interval(1.0, 2.0),))
        assert tl.earliest_fit(2.0, 0.0) == 2.0

    def test_fits_before_obstacle(self):
        tl = MachineTimeline(0.0, (Interval(1.0, 2.0),))
        assert tl.earliest_fit(1.0, 0.0) == 0.0

    def test_fits_exactly_between_obstacles(self):
        tl = MachineTimeline(
            0.0, (Interval(0.0, 1.0), Interval(3.0, 4.0))
        )
        assert tl.earliest_fit(2.0, 0.0) == 1.0

    def test_too_big_for_gap_goes_after(self):
        tl = MachineTimeline(
            0.0, (Interval(0.0, 1.0), Interval(3.0, 4.0))
        )
        assert tl.earliest_fit(2.5, 0.0) == 4.0

    def test_not_before_inside_obstacle(self):
        tl = MachineTimeline(0.0, (Interval(1.0, 5.0),))
        assert tl.earliest_fit(1.0, 3.0) == 5.0

    def test_zero_duration_fits_anywhere(self):
        tl = MachineTimeline(0.0, (Interval(1.0, 5.0),))
        assert tl.earliest_fit(0.0, 3.0) == 3.0


class TestPlacement:
    def test_place_updates_frontier(self):
        tl = MachineTimeline(0.0)
        tl.place(2.0, 0.0)
        assert tl.frontier == 2.0

    def test_place_rejects_overlap(self):
        tl = MachineTimeline(0.0, (Interval(1.0, 2.0),))
        with pytest.raises(ValueError):
            tl.place(2.0, 0.5)

    def test_frontier_fit_waits_for_placed(self):
        tl = MachineTimeline(0.0)
        tl.place_earliest(2.0, 0.0, backfill=False)
        iv = tl.place_earliest(1.0, 0.0, backfill=False)
        assert iv.start == 2.0

    def test_backfill_uses_gap(self):
        tl = MachineTimeline(0.0, (Interval(2.0, 3.0),))
        # First task lands after the obstacle, leaving gap [0, 2).
        first = tl.place_earliest(3.0, 0.0, backfill=True)
        assert first.start == 3.0
        second = tl.place_earliest(1.5, 0.0, backfill=True)
        assert second.start == 0.0

    def test_no_backfill_ignores_gap(self):
        tl = MachineTimeline(0.0, (Interval(2.0, 3.0),))
        tl.place_earliest(3.0, 0.0, backfill=False)
        second = tl.place_earliest(1.5, 0.0, backfill=False)
        assert second.start == 6.0

    def test_backfill_never_overlaps_placed(self):
        tl = MachineTimeline(0.0)
        tl.place(2.0, 1.0)  # busy [1, 3)
        iv = tl.place_earliest(1.5, 0.0, backfill=True)
        assert iv.start == 3.0  # gap [0,1) too small

    def test_many_placements_stay_disjoint(self):
        tl = MachineTimeline(0.0, (Interval(5.0, 6.0), Interval(10.0, 11.0)))
        placed = [
            tl.place_earliest(1.3, 0.0, backfill=True) for _ in range(12)
        ]
        placed.sort(key=lambda iv: iv.start)
        for a, b in zip(placed, placed[1:]):
            assert a.end <= b.start + 1e-9


class TestGaps:
    def test_empty_machine_one_gap(self):
        tl = MachineTimeline(0.0)
        assert tl.gaps(10.0) == [Interval(0.0, 10.0)]

    def test_gaps_between_obstacles(self):
        tl = MachineTimeline(
            0.0, (Interval(2.0, 3.0), Interval(5.0, 7.0))
        )
        assert tl.gaps(10.0) == [
            Interval(0.0, 2.0),
            Interval(3.0, 5.0),
            Interval(7.0, 10.0),
        ]

    def test_gaps_shrink_as_tasks_placed(self):
        tl = MachineTimeline(0.0, (Interval(4.0, 5.0),))
        before = sum(g.duration for g in tl.gaps(10.0))
        tl.place_earliest(2.0, 0.0, backfill=True)
        after = sum(g.duration for g in tl.gaps(10.0))
        assert after == pytest.approx(before - 2.0)

    def test_gap_clipped_at_horizon(self):
        tl = MachineTimeline(0.0, (Interval(2.0, 3.0),))
        gaps = tl.gaps(2.5)
        assert gaps == [Interval(0.0, 2.0)]

    def test_fully_busy_no_gaps(self):
        tl = MachineTimeline(0.0, (Interval(0.0, 10.0),))
        assert tl.gaps(10.0) == []
