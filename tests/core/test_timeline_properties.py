"""Property-based tests for the MachineTimeline placement machinery."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import EPSILON, Interval
from repro.core.timeline import MachineTimeline


@st.composite
def obstacle_sets(draw):
    count = draw(st.integers(min_value=0, max_value=5))
    points = sorted(
        draw(
            st.lists(
                st.floats(min_value=0.0, max_value=50.0),
                min_size=2 * count,
                max_size=2 * count,
            )
        )
    )
    return tuple(
        Interval(points[2 * i], points[2 * i + 1]) for i in range(count)
    )


durations = st.floats(min_value=0.001, max_value=8.0)


@given(
    obstacles=obstacle_sets(),
    tasks=st.lists(durations, min_size=1, max_size=10),
    backfill=st.booleans(),
)
@settings(max_examples=100, deadline=None)
def test_placements_never_overlap_anything(obstacles, tasks, backfill):
    timeline = MachineTimeline(0.0, obstacles)
    placed = [
        timeline.place_earliest(d, 0.0, backfill=backfill) for d in tasks
    ]
    busy = sorted(
        [iv for iv in placed if iv.duration > EPSILON]
        + [o for o in obstacles if o.duration > EPSILON],
        key=lambda iv: iv.start,
    )
    for a, b in zip(busy, busy[1:]):
        assert a.end <= b.start + 1e-9


@given(
    obstacles=obstacle_sets(),
    duration=durations,
    not_before=st.floats(min_value=0.0, max_value=60.0),
)
@settings(max_examples=100, deadline=None)
def test_earliest_fit_is_feasible_and_respects_release(
    obstacles, duration, not_before
):
    timeline = MachineTimeline(0.0, obstacles)
    start = timeline.earliest_fit(duration, not_before)
    assert start >= not_before - 1e-12
    candidate = Interval(start, start + duration)
    for obs in obstacles:
        if obs.duration > EPSILON:
            assert not candidate.overlaps(obs)


@given(
    obstacles=obstacle_sets(),
    duration=durations,
)
@settings(max_examples=60, deadline=None)
def test_earliest_fit_is_minimal_on_grid(obstacles, duration):
    """No feasible start strictly earlier than earliest_fit exists —
    checked on a discretized grid of candidate starts."""
    timeline = MachineTimeline(0.0, obstacles)
    best = timeline.earliest_fit(duration, 0.0)
    if best <= 1e-6:
        return  # already starts at the origin: trivially minimal
    real = [o for o in obstacles if o.duration > EPSILON]
    for candidate_start in np.linspace(0.0, best - 1e-6, 40):
        candidate = Interval(
            candidate_start, candidate_start + duration
        )
        assert any(candidate.overlaps(o) for o in real) or (
            best - candidate_start <= 2e-6
        )


@given(
    obstacles=obstacle_sets(),
    tasks=st.lists(durations, min_size=1, max_size=8),
)
@settings(max_examples=60, deadline=None)
def test_backfill_dominates_frontier_placement(obstacles, tasks):
    frontier = MachineTimeline(0.0, obstacles)
    gap = MachineTimeline(0.0, obstacles)
    frontier_ends = [
        frontier.place_earliest(d, 0.0, backfill=False).end for d in tasks
    ]
    gap_ends = [
        gap.place_earliest(d, 0.0, backfill=True).end for d in tasks
    ]
    # Task-by-task, gap placement never finishes later than frontier
    # placement given identical histories... which is only guaranteed for
    # the makespan (max end), not per task.
    assert max(gap_ends) <= max(frontier_ends) + 1e-9
