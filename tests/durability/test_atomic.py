"""Atomic commit plumbing: DurableFile, temp naming, stale-temp scan."""

import os

import pytest

from repro.durability import (
    DurableFile,
    atomic_write_bytes,
    atomic_write_text,
    find_stale_temps,
    temp_path_for,
)


class TestTempNaming:
    def test_same_directory_and_unique(self, tmp_path):
        target = tmp_path / "out.json"
        first = temp_path_for(target)
        second = temp_path_for(target)
        assert os.path.dirname(first) == str(tmp_path)
        assert first != second
        assert str(os.getpid()) in first
        assert ".tmp." in first


class TestDurableFile:
    def test_commit_publishes_whole_file(self, tmp_path):
        target = tmp_path / "out.bin"
        with DurableFile(target) as fh:
            fh.write(b"payload")
            assert not target.exists()  # invisible until commit
        assert target.read_bytes() == b"payload"
        assert find_stale_temps(tmp_path) == []

    def test_exception_leaves_no_trace(self, tmp_path):
        target = tmp_path / "out.bin"
        with pytest.raises(RuntimeError):
            with DurableFile(target) as fh:
                fh.write(b"partial")
                raise RuntimeError("boom")
        assert not target.exists()
        assert find_stale_temps(tmp_path) == []

    def test_replaces_previous_content_atomically(self, tmp_path):
        target = tmp_path / "out.bin"
        target.write_bytes(b"old")
        with DurableFile(target) as fh:
            fh.write(b"new content")
        assert target.read_bytes() == b"new content"

    def test_text_mode(self, tmp_path):
        target = tmp_path / "out.txt"
        with DurableFile(target, "w") as fh:
            fh.write("héllo")
        assert target.read_text(encoding="utf-8") == "héllo"

    @pytest.mark.parametrize("mode", ["r", "rb", "a", "ab", "r+", "w+"])
    def test_non_replacing_modes_rejected(self, tmp_path, mode):
        with pytest.raises(ValueError, match="whole files"):
            DurableFile(tmp_path / "out", mode)

    def test_crash_in_commit_window_leaves_stale_temp_only(self, tmp_path):
        """Dying between fsync and rename: no final file, one temp."""
        target = tmp_path / "report.json"

        def die():
            raise KeyboardInterrupt  # stands in for os._exit

        durable = DurableFile(target, before_commit=die)
        durable._file.write(b"{}")
        with pytest.raises(KeyboardInterrupt):
            durable.commit()
        assert not target.exists()
        stale = find_stale_temps(tmp_path)
        assert len(stale) == 1
        assert os.path.basename(stale[0]).startswith("report.json.tmp.")


class TestHelpers:
    def test_atomic_write_bytes(self, tmp_path):
        target = tmp_path / "blob"
        atomic_write_bytes(target, b"\x00\x01")
        assert target.read_bytes() == b"\x00\x01"

    def test_atomic_write_text(self, tmp_path):
        target = tmp_path / "text"
        atomic_write_text(target, "line\n")
        assert target.read_text() == "line\n"

    def test_find_stale_temps_only_matches_marker(self, tmp_path):
        (tmp_path / "keep.json").write_text("{}")
        (tmp_path / "x.tmp.123.0").write_text("")
        assert find_stale_temps(tmp_path) == [str(tmp_path / "x.tmp.123.0")]
