"""Crash-point chaos harness: kill a campaign subprocess, resume, compare.

Each case runs ``repro campaign`` in a subprocess with a fault spec that
arms one seeded :class:`ProcessKillFault` crash point.  The subprocess
must die with :data:`CRASH_EXIT_CODE`; ``--resume`` must then finish the
campaign and produce a report byte-identical to an uninterrupted
baseline run of the same seeds.  This is the recovery gate the CI
``chaos-smoke`` job enforces.
"""

import json
import os
import subprocess
import sys

import pytest

import repro
from repro.durability import CRASH_EXIT_CODE, find_stale_temps, read_journal

SRC_DIR = str(os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__))))

CAMPAIGN_ARGS = [
    "campaign",
    "--app", "nyx",
    "--nodes", "2",
    "--ppn", "2",
    "--iterations", "6",
    "--solution", "ours",
    "--seed", "3",
]

BASE_SPEC = {"seed": 7, "write_error": {"probability": 0.2}}

# (iteration, point) pairs covering every crash point in the closed set.
CRASH_CASES = [
    (1, "plan"),
    (2, "pre-commit"),
    (3, "torn-commit"),
    (3, "post-commit"),
    (-1, "report"),
]


def _run_repro(args, cwd):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        cwd=cwd,
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )


def _campaign(tmp_path, spec, name):
    spec_path = tmp_path / f"{name}.json"
    spec_path.write_text(json.dumps(spec))
    journal = tmp_path / f"{name}.jsonl"
    report = tmp_path / f"{name}.report.json"
    proc = _run_repro(
        CAMPAIGN_ARGS
        + [
            "--faults", str(spec_path),
            "--journal", str(journal),
            "--report-out", str(report),
        ],
        tmp_path,
    )
    return proc, journal, report


@pytest.fixture(scope="module")
def baseline(tmp_path_factory):
    """One uninterrupted run: the report every resumed run must match."""
    tmp_path = tmp_path_factory.mktemp("baseline")
    proc, journal, report = _campaign(tmp_path, BASE_SPEC, "base")
    assert proc.returncode == 0, proc.stderr
    return report.read_text()


@pytest.mark.parametrize(
    "iteration,point", CRASH_CASES, ids=[p for _, p in CRASH_CASES]
)
def test_kill_then_resume_recovers(tmp_path, baseline, iteration, point):
    spec = dict(
        BASE_SPEC,
        process_kill={"iteration": iteration, "point": point},
    )
    proc, journal, report = _campaign(tmp_path, spec, "kill")

    # The armed crash point must actually fire and take the process down.
    assert proc.returncode == CRASH_EXIT_CODE, (
        f"{point}@{iteration}: expected exit {CRASH_EXIT_CODE}, "
        f"got {proc.returncode}\nstdout: {proc.stdout}\n"
        f"stderr: {proc.stderr}"
    )
    assert journal.exists()

    # Resume must finish cleanly from the journal alone.
    resumed = _run_repro(
        ["campaign", "--resume", str(journal), "--report-out", str(report)],
        tmp_path,
    )
    assert resumed.returncode == 0, (
        f"{point}@{iteration}: resume failed\nstdout: {resumed.stdout}\n"
        f"stderr: {resumed.stderr}"
    )

    # No lost committed iterations, no divergence: the resumed report is
    # byte-identical to the uninterrupted baseline.
    assert report.read_text() == baseline

    # The journal scrubs clean and is complete.
    scrub = _run_repro(["verify", str(journal)], tmp_path)
    assert scrub.returncode == 0, scrub.stdout
    assert "complete" in scrub.stdout

    # No torn files anywhere: every temp was either renamed or cleaned.
    assert find_stale_temps(tmp_path) == []


def test_killed_journal_holds_only_committed_iterations(tmp_path):
    """After a post-commit kill at iteration 3, commits 0..3 survive."""
    spec = dict(
        BASE_SPEC, process_kill={"iteration": 3, "point": "post-commit"}
    )
    proc, journal, _ = _campaign(tmp_path, spec, "kill")
    assert proc.returncode == CRASH_EXIT_CODE
    records, _, torn = read_journal(journal)
    commits = [r["data"]["iteration"] for r in records if r["type"] == "commit"]
    assert commits == [0, 1, 2, 3]
    assert not torn


def test_torn_commit_leaves_verifiably_torn_tail(tmp_path):
    spec = dict(
        BASE_SPEC, process_kill={"iteration": 2, "point": "torn-commit"}
    )
    proc, journal, _ = _campaign(tmp_path, spec, "kill")
    assert proc.returncode == CRASH_EXIT_CODE
    blob = journal.read_bytes()
    assert not blob.endswith(b"\n")  # the append genuinely tore
    records, _, torn = read_journal(journal)
    assert torn
    commits = [r["data"]["iteration"] for r in records if r["type"] == "commit"]
    assert commits == [0, 1]  # iteration 2's commit never landed


def test_resume_of_clean_run_is_idempotent(tmp_path, baseline):
    """Resuming a complete journal replays everything and changes nothing."""
    proc, journal, report = _campaign(tmp_path, BASE_SPEC, "clean")
    assert proc.returncode == 0, proc.stderr
    first = report.read_text()
    assert first == baseline
    before = journal.read_bytes()
    resumed = _run_repro(
        ["campaign", "--resume", str(journal), "--report-out", str(report)],
        tmp_path,
    )
    assert resumed.returncode == 0, resumed.stderr
    assert journal.read_bytes() == before
    assert report.read_text() == first
