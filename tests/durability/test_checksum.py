"""CRC32C: known vectors, chaining, combination, vectorized kernel."""

import numpy as np
import pytest

from repro.durability import checksum as cs
from repro.durability.checksum import crc32c, crc32c_combine, crc32c_hex


class TestVectors:
    """The standard Castagnoli check values (RFC 3720 / iSCSI)."""

    def test_check_string(self):
        assert crc32c(b"123456789") == 0xE3069283

    def test_zeros(self):
        assert crc32c(bytes(32)) == 0x8A9136AA

    def test_ones(self):
        assert crc32c(b"\xff" * 32) == 0x62A8AB43

    def test_incrementing(self):
        assert crc32c(bytes(range(32))) == 0x46DD794E

    def test_empty(self):
        assert crc32c(b"") == 0

    def test_hex_form(self):
        assert crc32c_hex(b"123456789") == "e3069283"


class TestChaining:
    def test_running_value_matches_one_shot(self, rng):
        data = rng.integers(0, 256, size=10_000, dtype=np.uint8).tobytes()
        split = 3_333
        running = crc32c(data[split:], crc32c(data[:split]))
        assert running == crc32c(data)

    def test_byte_at_a_time(self, rng):
        data = rng.integers(0, 256, size=100, dtype=np.uint8).tobytes()
        state = 0
        for i in range(len(data)):
            state = crc32c(data[i : i + 1], state)
        assert state == crc32c(data)

    def test_memoryview_and_ndarray_inputs(self, rng):
        arr = rng.integers(0, 256, size=512, dtype=np.uint8)
        blob = arr.tobytes()
        assert crc32c(memoryview(blob)) == crc32c(blob)
        assert crc32c(arr) == crc32c(blob)


class TestVectorizedKernel:
    """The numpy lockstep path must agree with the bytewise reference."""

    @pytest.mark.parametrize(
        "length",
        [
            0,
            1,
            cs._CHUNK - 1,
            cs._CHUNK,
            cs._VECTOR_MIN - 1,
            cs._VECTOR_MIN,
            cs._VECTOR_MIN + 1,
            cs._VECTOR_MIN + cs._CHUNK // 2,
            4 * cs._VECTOR_MIN + 17,
        ],
    )
    def test_matches_bytewise(self, length, rng):
        data = rng.integers(0, 256, size=length, dtype=np.uint8).tobytes()
        reference = cs._bytewise(memoryview(data), 0xFFFFFFFF) ^ 0xFFFFFFFF
        assert crc32c(data) == reference

    def test_matches_bytewise_with_seed(self, rng):
        data = rng.integers(
            0, 256, size=cs._VECTOR_MIN + 5, dtype=np.uint8
        ).tobytes()
        seed = crc32c(b"prefix")
        reference = (
            cs._bytewise(memoryview(data), seed ^ 0xFFFFFFFF) ^ 0xFFFFFFFF
        )
        assert crc32c(data, seed) == reference

    def test_random_lengths_property(self, rng):
        for _ in range(20):
            length = int(rng.integers(0, 4 * cs._VECTOR_MIN))
            data = rng.integers(
                0, 256, size=length, dtype=np.uint8
            ).tobytes()
            reference = (
                cs._bytewise(memoryview(data), 0xFFFFFFFF) ^ 0xFFFFFFFF
            )
            assert crc32c(data) == reference


class TestCombine:
    def test_combine_equals_concatenation(self, rng):
        for _ in range(20):
            n1 = int(rng.integers(0, 2_000))
            n2 = int(rng.integers(0, 2_000))
            a = rng.integers(0, 256, size=n1, dtype=np.uint8).tobytes()
            b = rng.integers(0, 256, size=n2, dtype=np.uint8).tobytes()
            assert crc32c_combine(crc32c(a), crc32c(b), len(b)) == crc32c(
                a + b
            )

    def test_combine_zero_length(self):
        assert crc32c_combine(0x12345678, crc32c(b""), 0) == 0x12345678

    def test_combine_associates_with_three_parts(self, rng):
        parts = [
            rng.integers(0, 256, size=500, dtype=np.uint8).tobytes()
            for _ in range(3)
        ]
        total = crc32c(parts[0])
        for part in parts[1:]:
            total = crc32c_combine(total, crc32c(part), len(part))
        assert total == crc32c(b"".join(parts))
