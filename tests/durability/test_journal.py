"""Campaign journal: record integrity, torn tails, replay verification."""

import json

import pytest

from repro.durability import (
    CRASH_POINTS,
    CampaignJournal,
    JournalError,
    canonical_json,
    decode_record,
    encode_record,
    read_journal,
    set_crash_handler,
    trigger_crash,
)

HEADER = {"app": "nyx", "seed": 3, "iterations": 2}


class Killed(Exception):
    """Test stand-in for os._exit at a crash point."""


class FakeInjector:
    """Arms exactly one crash point, at most once."""

    def __init__(self, point: str, iteration: int = -1) -> None:
        self.point = point
        self.iteration = iteration
        self.fired = False

    def process_kill_fires(self, point: str, iteration: int) -> bool:
        if self.fired or point != self.point:
            return False
        if self.iteration not in (-1, iteration):
            return False
        self.fired = True
        return True


@pytest.fixture
def crash_to_exception():
    def handler(point, iteration):
        raise Killed(f"{point}@{iteration}")

    previous = set_crash_handler(handler)
    yield
    set_crash_handler(previous)


def _write_run(path, iterations=2):
    journal = CampaignJournal.create(path, HEADER, fsync=False)
    for i in range(iterations):
        journal.record_plan(i, {"dump": i > 0})
        journal.record_commit(i, {"overall_s": float(i)})
    journal.record_end({"iterations": iterations})
    journal.close()


class TestRecords:
    def test_encode_decode_roundtrip(self):
        line = encode_record(0, "begin", {"a": 1})
        record = decode_record(line.rstrip(b"\n"), 1)
        assert record == {"seq": 0, "type": "begin", "data": {"a": 1}}

    def test_decode_rejects_flipped_byte(self):
        line = bytearray(encode_record(0, "begin", {"a": 1}).rstrip(b"\n"))
        # Flip inside the data, keeping the JSON parseable.
        line[line.index(b"1")] = ord("2")
        with pytest.raises(JournalError, match="checksum mismatch"):
            decode_record(bytes(line), 4)

    def test_decode_rejects_missing_field(self):
        with pytest.raises(JournalError, match="missing field 'crc'"):
            decode_record(b'{"seq": 0, "type": "x", "data": {}}', 1)

    def test_decode_rejects_non_json(self):
        with pytest.raises(JournalError, match="not valid JSON"):
            decode_record(b"\xff\xfe", 1)

    def test_canonical_json_is_byte_stable(self):
        assert canonical_json({"b": 1, "a": [1.5, "x"]}) == (
            '{"a":[1.5,"x"],"b":1}'
        )


class TestReadJournal:
    def test_full_run_reads_clean(self, tmp_path):
        path = tmp_path / "j.jsonl"
        _write_run(path)
        records, good_bytes, torn = read_journal(path)
        assert [r["type"] for r in records] == [
            "begin", "plan", "commit", "plan", "commit", "end",
        ]
        assert good_bytes == path.stat().st_size
        assert not torn

    def test_torn_tail_is_tolerated(self, tmp_path):
        path = tmp_path / "j.jsonl"
        _write_run(path)
        size = path.stat().st_size
        with open(path, "ab") as fh:
            fh.write(b'{"seq": 6, "type":')  # crashed mid-append
        records, good_bytes, torn = read_journal(path)
        assert torn
        assert good_bytes == size
        assert len(records) == 6

    def test_corrupt_middle_record_is_fatal(self, tmp_path):
        path = tmp_path / "j.jsonl"
        _write_run(path)
        lines = path.read_bytes().splitlines(keepends=True)
        lines[2] = lines[2][:10] + b"X" + lines[2][11:]
        path.write_bytes(b"".join(lines))
        with pytest.raises(JournalError, match="line 3"):
            read_journal(path)

    def test_sequence_gap_is_fatal(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with open(path, "wb") as fh:
            fh.write(encode_record(0, "begin", HEADER))
            fh.write(encode_record(2, "plan", {"iteration": 0}))
            fh.write(encode_record(3, "x", {}))  # gap is not the tail
        with pytest.raises(JournalError, match="sequence gap"):
            read_journal(path)


class TestResume:
    def test_resume_complete_journal(self, tmp_path):
        path = tmp_path / "j.jsonl"
        _write_run(path)
        journal = CampaignJournal.resume(path)
        assert journal.header["app"] == "nyx"
        assert journal.committed_iterations == 2
        assert journal.is_complete
        journal.close()

    def test_resume_truncates_torn_tail(self, tmp_path):
        path = tmp_path / "j.jsonl"
        _write_run(path)
        size = path.stat().st_size
        with open(path, "ab") as fh:
            fh.write(b"torn garbage")
        CampaignJournal.resume(path).close()
        assert path.stat().st_size == size

    def test_replay_verifies_identical_records(self, tmp_path):
        path = tmp_path / "j.jsonl"
        _write_run(path)
        journal = CampaignJournal.resume(path)
        journal.record_plan(0, {"dump": False})
        journal.record_commit(0, {"overall_s": 0.0})
        journal.close()

    def test_replay_divergence_is_fatal(self, tmp_path):
        path = tmp_path / "j.jsonl"
        _write_run(path)
        journal = CampaignJournal.resume(path)
        with pytest.raises(JournalError, match="diverged.*iteration 0"):
            journal.record_commit(0, {"overall_s": 999.0})
        journal.close()

    def test_resume_continues_appending(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = CampaignJournal.create(path, HEADER, fsync=False)
        journal.record_plan(0, {"dump": False})
        journal.record_commit(0, {"overall_s": 0.0})
        journal.record_plan(1, {"dump": True})
        journal.close()  # crashed before commit 1

        resumed = CampaignJournal.resume(path, fsync=False)
        assert resumed.committed_iterations == 1
        assert not resumed.is_complete
        resumed.record_plan(0, {"dump": False})  # replay
        resumed.record_commit(0, {"overall_s": 0.0})  # replay
        resumed.record_plan(1, {"dump": True})  # replay
        resumed.record_commit(1, {"overall_s": 1.0})  # live append
        resumed.record_end({"iterations": 2})
        resumed.close()
        records, _, torn = read_journal(path)
        assert not torn
        assert [r["type"] for r in records] == [
            "begin", "plan", "commit", "plan", "commit", "end",
        ]

    def test_structure_violation_is_fatal(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with open(path, "wb") as fh:
            fh.write(encode_record(0, "begin", HEADER))
            fh.write(encode_record(1, "commit", {"iteration": 0}))
            fh.write(encode_record(2, "end", {}))
        with pytest.raises(JournalError, match="expected a 'plan'"):
            CampaignJournal.resume(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(OSError):
            CampaignJournal.resume(tmp_path / "absent.jsonl")


class TestCrashPoints:
    def test_crash_point_names_are_closed(self):
        assert set(CRASH_POINTS) == {
            "plan", "pre-commit", "torn-commit", "post-commit", "report",
        }

    def test_trigger_crash_validates_point(self, crash_to_exception):
        with pytest.raises(ValueError, match="unknown crash point"):
            trigger_crash("nonsense", 0)

    @pytest.mark.parametrize("point", ["plan", "pre-commit", "post-commit"])
    def test_injected_kill_fires_at_point(
        self, tmp_path, crash_to_exception, point
    ):
        journal = CampaignJournal.create(
            tmp_path / "j.jsonl",
            HEADER,
            fsync=False,
            injector=FakeInjector(point, iteration=1),
        )
        journal.record_plan(0, {})
        journal.record_commit(0, {})
        with pytest.raises(Killed, match=f"{point}@1"):
            journal.record_plan(1, {})
            journal.record_commit(1, {})
        journal.close()

    def test_torn_commit_writes_half_a_line(
        self, tmp_path, crash_to_exception
    ):
        path = tmp_path / "j.jsonl"
        journal = CampaignJournal.create(
            path,
            HEADER,
            fsync=False,
            injector=FakeInjector("torn-commit", iteration=0),
        )
        journal.record_plan(0, {})
        with pytest.raises(Killed):
            journal.record_commit(0, {"overall_s": 0.0})
        journal.close()
        blob = path.read_bytes()
        assert not blob.endswith(b"\n")  # genuinely torn
        records, _, torn = read_journal(path)
        assert torn
        assert [r["type"] for r in records] == ["begin", "plan"]
        # And the torn journal resumes: iteration 0 is uncommitted.
        resumed = CampaignJournal.resume(path, fsync=False)
        assert resumed.committed_iterations == 0
        resumed.close()

    def test_closed_journal_rejects_appends(self, tmp_path):
        journal = CampaignJournal.create(
            tmp_path / "j.jsonl", HEADER, fsync=False
        )
        journal.close()
        with pytest.raises(JournalError, match="closed"):
            journal.record_plan(0, {})


class TestHeaderIntegrity:
    def test_header_round_trips_json_types(self, tmp_path):
        path = tmp_path / "j.jsonl"
        header = {"app": "nyx", "faults": {"stall": {"probability": 0.5}}}
        CampaignJournal.create(path, header, fsync=False).close()
        journal = CampaignJournal.resume(path)
        assert journal.header["faults"] == {"stall": {"probability": 0.5}}
        assert journal.header["journal_version"] == 1
        journal.close()

    def test_journal_lines_are_valid_jsonl(self, tmp_path):
        path = tmp_path / "j.jsonl"
        _write_run(path)
        for line in path.read_text().splitlines():
            record = json.loads(line)
            assert {"seq", "type", "data", "crc"} <= set(record)
