"""The ``repro verify`` scrubber: snapshots, journals, auto-sniffing."""

import os

import numpy as np
import pytest

from repro.durability import (
    CampaignJournal,
    atomic_write_text,
    encode_record,
    verify_journal,
    verify_path,
    verify_snapshot,
)
from repro.framework import save_snapshot
from repro.io import SharedFileReader


def _make_snapshot(path, rng):
    fields = {
        "rho": np.cumsum(rng.normal(size=(16, 16, 16)), axis=0),
        "energy": np.cumsum(rng.normal(size=(400,))),
    }
    save_snapshot(path, fields, error_bounds=0.01, block_bytes=16_384)
    return fields


def _make_journal(path, iterations=3):
    journal = CampaignJournal.create(
        path, {"app": "nyx", "seed": 1}, fsync=False
    )
    for i in range(iterations):
        journal.record_plan(i, {"dump": False})
        journal.record_commit(i, {"overall_s": float(i)})
    journal.record_end({"iterations": iterations})
    journal.close()


class TestVerifySnapshot:
    def test_clean_snapshot(self, tmp_path, rng):
        path = tmp_path / "snap.rpio"
        _make_snapshot(path, rng)
        report = verify_snapshot(path)
        assert report.ok
        assert report.kind == "snapshot"
        assert report.checked > 2
        assert "clean" in report.format()

    def test_corrupt_block_names_field_and_index(self, tmp_path, rng):
        path = tmp_path / "snap.rpio"
        _make_snapshot(path, rng)
        with SharedFileReader(path) as reader:
            entry = reader.entries["rho/0"]
            offset = entry.offset + entry.nbytes // 2
        blob = bytearray(path.read_bytes())
        blob[offset] ^= 0x10
        path.write_bytes(bytes(blob))
        report = verify_snapshot(path)
        assert not report.ok
        assert any("rho" in issue for issue in report.issues)
        assert "CORRUPT" in report.format()

    def test_garbage_file_is_unreadable_container(self, tmp_path):
        path = tmp_path / "junk.rpio"
        path.write_bytes(b"RPIO????not a container at all")
        report = verify_snapshot(path)
        assert not report.ok
        assert any("container" in issue for issue in report.issues)

    def test_stale_temp_noted(self, tmp_path, rng):
        path = tmp_path / "snap.rpio"
        _make_snapshot(path, rng)
        (tmp_path / "snap.rpio.tmp.999.0").write_bytes(b"half written")
        report = verify_snapshot(path)
        assert report.ok  # a stale temp is a note, not corruption
        assert any("stale temp" in note for note in report.notes)

    def test_subfiled_snapshot(self, tmp_path, rng):
        target = tmp_path / "snapdir"
        fields = {"a": np.cumsum(rng.normal(size=(8, 8)), axis=0)}
        save_snapshot(
            target,
            fields,
            error_bounds=0.1,
            layout="subfiled",
            num_subfiles=2,
        )
        report = verify_snapshot(target)
        assert report.ok


class TestVerifyJournal:
    def test_clean_journal(self, tmp_path):
        path = tmp_path / "j.jsonl"
        _make_journal(path)
        report = verify_journal(path)
        assert report.ok
        assert report.kind == "journal"
        assert any("3 committed" in note for note in report.notes)
        assert any("complete" in note for note in report.notes)

    def test_resumable_journal_noted(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = CampaignJournal.create(path, {"app": "nyx"}, fsync=False)
        journal.record_plan(0, {})
        journal.record_commit(0, {})
        journal.close()
        report = verify_journal(path)
        assert report.ok
        assert any("resumable" in note for note in report.notes)

    def test_torn_tail_is_a_note_not_an_issue(self, tmp_path):
        path = tmp_path / "j.jsonl"
        _make_journal(path)
        with open(path, "ab") as fh:
            fh.write(b'{"seq": 99, "ty')
        report = verify_journal(path)
        assert report.ok
        assert any("torn tail" in note for note in report.notes)

    def test_corrupt_middle_record_is_an_issue(self, tmp_path):
        path = tmp_path / "j.jsonl"
        _make_journal(path)
        lines = path.read_bytes().splitlines(keepends=True)
        lines[1] = lines[1][:12] + b"Z" + lines[1][13:]
        path.write_bytes(b"".join(lines))
        report = verify_journal(path)
        assert not report.ok
        assert any("line 2" in issue for issue in report.issues)

    def test_protocol_violation_is_an_issue(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with open(path, "wb") as fh:
            fh.write(encode_record(0, "begin", {}))
            fh.write(encode_record(1, "commit", {"iteration": 0}))
            fh.write(encode_record(2, "end", {}))
        report = verify_journal(path)
        assert not report.ok
        assert any("expected a 'plan'" in issue for issue in report.issues)

    def test_missing_file_is_an_issue(self, tmp_path):
        report = verify_journal(tmp_path / "absent.jsonl")
        assert not report.ok
        assert any("unreadable" in issue for issue in report.issues)


class TestVerifyPath:
    def test_directory_sniffs_as_snapshot(self, tmp_path, rng):
        target = tmp_path / "snapdir"
        save_snapshot(
            target,
            {"a": np.cumsum(rng.normal(size=(8, 8)), axis=0)},
            error_bounds=0.1,
            layout="subfiled",
        )
        assert verify_path(target).kind == "snapshot"

    def test_rpio_magic_sniffs_as_snapshot(self, tmp_path, rng):
        path = tmp_path / "snap.rpio"
        _make_snapshot(path, rng)
        assert verify_path(path).kind == "snapshot"

    def test_other_files_sniff_as_journal(self, tmp_path):
        path = tmp_path / "j.jsonl"
        _make_journal(path)
        assert verify_path(path).kind == "journal"

    def test_explicit_kind_overrides_sniffing(self, tmp_path):
        path = tmp_path / "j.jsonl"
        _make_journal(path)
        report = verify_path(path, kind="snapshot")
        assert report.kind == "snapshot"
        assert not report.ok  # a journal is not a valid container

    def test_unknown_kind_rejected(self, tmp_path):
        path = tmp_path / "x"
        atomic_write_text(path, "{}")
        with pytest.raises(ValueError, match="unknown verify kind"):
            verify_path(path, kind="tarball")


class TestCliExitCodes:
    def test_verify_clean_exits_zero(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "j.jsonl"
        _make_journal(path)
        assert main(["verify", str(path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_verify_corrupt_exits_one(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "j.jsonl"
        _make_journal(path)
        lines = path.read_bytes().splitlines(keepends=True)
        lines[1] = lines[1][:12] + b"Z" + lines[1][13:]
        path.write_bytes(b"".join(lines))
        assert main(["verify", str(path)]) == 1
        assert "CORRUPT" in capsys.readouterr().out

    def test_verify_missing_target_exits_two(self, tmp_path, capsys):
        from repro.cli import main

        missing = os.path.join(str(tmp_path), "absent.rpio")
        assert main(["verify", missing, "--kind", "auto"]) == 2
