"""Engine registry, shared-memory registry, and driver basics."""

import warnings

import numpy as np
import pytest

from repro.engines import (
    CampaignSpec,
    EngineError,
    ProcessPoolEngine,
    SegmentRegistry,
    SimulatorEngine,
    attach_view,
    get_engine,
    list_engines,
    register_engine,
    run_campaign,
)
from repro.engines.shm import SHM_PREFIX, active_segments


class TestRegistry:
    def test_builtin_engines_registered(self):
        assert list_engines() == ["process", "sim"]
        assert get_engine("sim") is SimulatorEngine
        assert get_engine("process") is ProcessPoolEngine

    def test_unknown_engine(self):
        with pytest.raises(EngineError, match="unknown engine 'mpi'"):
            get_engine("mpi")

    def test_reregistering_same_class_is_idempotent(self):
        assert register_engine(SimulatorEngine) is SimulatorEngine

    def test_name_collision_rejected(self):
        class Impostor(SimulatorEngine):
            name = "sim"

        with pytest.raises(ValueError, match="already registered"):
            register_engine(Impostor)

    def test_unnamed_engine_rejected(self):
        class Nameless(SimulatorEngine):
            name = ""

        with pytest.raises(ValueError, match="non-empty"):
            register_engine(Nameless)


class TestSegmentRegistry:
    def test_create_release_cycle(self):
        registry = SegmentRegistry()
        segment = registry.create(256)
        assert segment.name.startswith(SHM_PREFIX)
        assert segment.name in active_segments()
        assert registry.live == [segment.name]
        view = attach_view(segment, (32,), np.dtype("<f8"), 0)
        view[:] = np.arange(32, dtype=np.float64)
        assert float(view.sum()) == float(np.arange(32).sum())
        del view  # views pin the mapping; drop before unlinking
        registry.release(segment.name)
        assert registry.live == []
        assert segment.name not in active_segments()

    def test_release_unknown_name_is_noop(self):
        SegmentRegistry().release("repro-shm-never-existed")

    def test_release_all(self):
        registry = SegmentRegistry()
        names = [registry.create(64).name for _ in range(3)]
        registry.release_all()
        assert registry.live == []
        assert not set(names) & set(active_segments())


class TestRunCampaignDriver:
    def test_spec_and_legacy_kwargs_are_exclusive(self):
        with pytest.raises(EngineError, match="not both"):
            run_campaign(CampaignSpec(), nodes=2)

    def test_journal_and_resume_are_exclusive(self, tmp_path):
        with pytest.raises(EngineError, match="mutually exclusive"):
            run_campaign(
                CampaignSpec(),
                journal_path=str(tmp_path / "j"),
                resume_path=str(tmp_path / "j"),
            )

    def test_legacy_kwargs_run(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            report = run_campaign(
                num_nodes=1, processes_per_node=2, num_iterations=3
            )
        assert report.engine == "sim"
        assert len(report.result.records) == 3
        assert report.data is None
        assert report.block_crc32c == {}
        report.close()

    def test_report_carries_wall_and_modelled_time(self):
        report = run_campaign(CampaignSpec(nodes=1, ppn=2, iterations=3))
        assert report.wall_time_s > 0.0
        assert report.modelled_time_s == pytest.approx(
            report.result.total_time
        )
