"""Each engine end to end: data plane, shutdown, cleanup."""

import dataclasses
import os

import pytest

from repro.compression import SZCompressor
from repro.engines import (
    CampaignSpec,
    PoolDataPlane,
    ProcessPoolEngine,
    run_campaign,
)
from repro.engines.shm import active_segments
from repro.io.hdf5like import SharedFileReader


def small_spec(**overrides) -> CampaignSpec:
    base = dict(
        nodes=1,
        ppn=2,
        iterations=3,
        seed=5,
        data_edge=8,
        data_fields=1,
        data_block_bytes=2048,
    )
    base.update(overrides)
    return CampaignSpec(**base)


class TestSimulatorEngineDataPlane:
    def test_dump_iterations_write_containers(self, tmp_path):
        spec = small_spec(engine="sim", data_dir=str(tmp_path))
        report = run_campaign(spec)
        dumped = [r.iteration for r in report.result.records if r.dumped]
        assert sorted(report.data.containers) == dumped
        for path in report.data.containers.values():
            assert os.path.exists(path)
        assert report.data.num_blocks == len(report.block_crc32c)
        assert report.data.workers == 1

    def test_containers_decompress_within_bound(self, tmp_path):
        spec = small_spec(engine="sim", data_dir=str(tmp_path))
        report = run_campaign(spec)
        app = spec.data_application()
        field = app.fields[0]
        iteration, path = sorted(report.data.containers.items())[0]
        compressor = SZCompressor()
        with SharedFileReader(path) as reader:
            names = [
                n for n in reader.names() if n.startswith("rank0/")
            ]
            assert names
            payload = reader.read(names[0])
        from repro.compression import CompressedBlock

        block = CompressedBlock.from_bytes(payload)
        values = compressor.decompress(block)
        original = app.generate_field(field.name, 0, iteration)
        sliced = original[: values.shape[0]]
        assert abs(values - sliced).max() <= field.error_bound * (
            1 + 1e-9
        )


class TestProcessPoolEngine:
    def test_runs_with_temp_data_dir(self):
        spec = small_spec(engine="process", workers=2)
        report = run_campaign(spec)
        assert report.engine == "process"
        assert report.data is not None
        assert report.data.num_blocks > 0
        # The temp directory is removed at finalize.
        for path in report.data.containers.values():
            assert not os.path.exists(path)
        assert active_segments() == []

    def test_explicit_data_dir_is_kept(self, tmp_path):
        spec = small_spec(
            engine="process", data_dir=str(tmp_path), workers=2
        )
        report = run_campaign(spec)
        for path in report.data.containers.values():
            assert os.path.exists(path)
        assert report.data.workers == 2

    def test_worker_count_defaults_to_ranks_or_cpus(self, tmp_path):
        spec = small_spec(engine="process")
        plane = PoolDataPlane(
            dataclasses.replace(spec, data_dir=str(tmp_path))
        )
        assert plane.workers == min(2, os.cpu_count() or 1)
        plane.close()

    def test_abort_unlinks_segments_and_temp_dir(self, tmp_path):
        spec = small_spec(engine="process", workers=2)
        engine = ProcessPoolEngine(spec)
        engine.prepare()
        # Simulate a crash mid-campaign: segments may be live.
        engine.dataplane.registry.create(1024)
        engine.abort()
        assert active_segments() == []
        assert engine.dataplane.registry.live == []
        # abort() is idempotent.
        engine.abort()

    def test_dump_failure_aborts_container(self, tmp_path, monkeypatch):
        spec = small_spec(
            engine="process", data_dir=str(tmp_path), workers=2
        )
        engine = ProcessPoolEngine(spec)
        engine.prepare()

        def boom(*a, **k):
            raise RuntimeError("worker dispatch failed")

        monkeypatch.setattr(
            engine.dataplane._pool, "apply_async", boom
        )
        with pytest.raises(RuntimeError, match="worker dispatch"):
            for iteration in range(spec.iterations):
                engine.run_iteration(iteration)
        engine.abort()
        # No half-written container was published and nothing leaked.
        assert all(
            not name.endswith(".rpio")
            for name in os.listdir(tmp_path)
        )
        assert active_segments() == []
