"""Cross-engine equivalence: sim and process must agree on everything
except wall-clock.

The contract under test (ISSUE 6): the same CampaignSpec + seed run
under SimulatorEngine and ProcessPoolEngine produces

* identical compressed-block CRC32Cs (the data planes are byte-equal),
* structurally equal campaign reports (timings excepted), and
* byte-identical journal records, so a journal written under one
  engine resumes under it identically to an uninterrupted run.
"""

import dataclasses

import pytest

from repro.durability import CampaignJournal
from repro.engines import CampaignSpec, run_campaign
from repro.framework.report import campaign_result_to_dict


def small_spec(**overrides) -> CampaignSpec:
    base = dict(
        nodes=1,
        ppn=2,
        iterations=4,
        seed=13,
        data_edge=8,
        data_fields=2,
        data_block_bytes=2048,
    )
    base.update(overrides)
    return CampaignSpec(**base)


@pytest.fixture(scope="module")
def paired_reports(tmp_path_factory):
    """One campaign run under both engines (module-scoped: it is the
    expensive part of this suite)."""
    d1 = tmp_path_factory.mktemp("sim-data")
    d2 = tmp_path_factory.mktemp("process-data")
    sim = run_campaign(
        small_spec(engine="sim", data_dir=str(d1))
    )
    process = run_campaign(
        small_spec(engine="process", data_dir=str(d2), workers=2)
    )
    return sim, process


class TestCrossEngineEquivalence:
    def test_identical_block_crc32cs(self, paired_reports):
        sim, process = paired_reports
        assert sim.block_crc32c  # non-empty: the data plane really ran
        assert sim.block_crc32c == process.block_crc32c

    def test_identical_compressed_sizes(self, paired_reports):
        sim, process = paired_reports
        assert sim.data.num_blocks == process.data.num_blocks
        assert sim.data.raw_bytes == process.data.raw_bytes
        assert sim.data.compressed_bytes == process.data.compressed_bytes

    def test_structurally_equal_reports(self, paired_reports):
        sim, process = paired_reports
        # campaign_result_to_dict holds only modelled values — no wall
        # clock — so equality here is exact, not approximate.
        assert campaign_result_to_dict(
            sim.result
        ) == campaign_result_to_dict(process.result)

    def test_wall_clock_is_the_only_difference(self, paired_reports):
        sim, process = paired_reports
        assert sim.modelled_time_s == process.modelled_time_s
        assert sim.engine != process.engine


class TestJournalEquivalence:
    def test_identical_journal_records(self, tmp_path):
        """Everything but the header line (which names the engine) is
        byte-identical across engines."""
        paths = {}
        for engine in ("sim", "process"):
            path = tmp_path / f"{engine}.journal"
            report = run_campaign(
                small_spec(engine=engine, iterations=3),
                journal_path=str(path),
            )
            report.close()
            paths[engine] = path.read_bytes().splitlines()
        assert paths["sim"][1:] == paths["process"][1:]
        assert paths["sim"][0] != paths["process"][0]

    @pytest.mark.parametrize("engine", ["sim", "process"])
    def test_resume_matches_uninterrupted_run(self, tmp_path, engine):
        """Truncate a journal mid-campaign; the resumed run must equal
        the uninterrupted one and choose its engine from the header."""
        spec = small_spec(engine=engine, iterations=4)
        journal_path = tmp_path / "full.journal"
        full = run_campaign(spec, journal_path=str(journal_path))
        full.close()
        lines = journal_path.read_bytes().splitlines(keepends=True)
        # begin + 2 committed iterations (plan+commit each): crash here.
        truncated = tmp_path / "crashed.journal"
        truncated.write_bytes(b"".join(lines[:5]))

        resumed = run_campaign(resume_path=str(truncated))
        resumed.close()
        assert resumed.engine == engine
        assert campaign_result_to_dict(
            resumed.result
        ) == campaign_result_to_dict(full.result)
        # The resumed journal completed: it now equals the full one.
        assert truncated.read_bytes() == journal_path.read_bytes()
        replay = CampaignJournal.resume(str(truncated))
        assert replay.is_complete
        replay.close()
