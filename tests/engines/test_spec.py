"""CampaignSpec: validation, canonical fingerprint, legacy shim."""

import dataclasses
import json
import warnings

import pytest

import repro.engines.spec as spec_module
from repro.durability import canonical_json
from repro.engines import CampaignSpec
from repro.framework import ours_config


class TestValidation:
    def test_defaults_are_valid(self):
        spec = CampaignSpec()
        assert spec.app == "nyx"
        assert spec.engine == "sim"

    @pytest.mark.parametrize(
        "field,value",
        [
            ("app", "lammps"),
            ("nodes", 0),
            ("nodes", 2.5),
            ("ppn", -1),
            ("iterations", -3),
            ("solution", "theirs"),
            ("seed", "one"),
            ("engine", ""),
            ("faults", [1, 2]),
            ("config", "ours"),
            ("data_edge", 1),
            ("data_fields", 0),
            ("data_block_bytes", 0),
            ("workers", 0),
            ("task_deadline_s", 0.0),
            ("task_deadline_s", -1.0),
            ("max_task_retries", -1),
            ("max_task_retries", 1.5),
            ("speculative_frac", -0.1),
            ("speculative_frac", 1.1),
        ],
    )
    def test_bad_value_names_the_field(self, field, value):
        with pytest.raises(ValueError, match=f"CampaignSpec.{field}"):
            CampaignSpec(**{field: value})

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            CampaignSpec().nodes = 8


class TestFingerprint:
    def test_canonical_json_serializable(self):
        spec = CampaignSpec(config=ours_config(), data_dir="/tmp/x")
        text = canonical_json(spec.to_json_dict())
        assert json.loads(text)["app"] == "nyx"

    def test_fingerprint_stable_and_sensitive(self):
        a = CampaignSpec(seed=3)
        b = CampaignSpec(seed=3)
        c = CampaignSpec(seed=4)
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != c.fingerprint()

    def test_data_dir_location_not_in_fingerprint(self):
        # The data plane's *shape* is identity; its directory is not.
        a = CampaignSpec(data_dir="/tmp/a")
        b = CampaignSpec(data_dir="/tmp/b")
        assert a.fingerprint() == b.fingerprint()

    def test_supervision_knobs_not_in_fingerprint(self):
        # Deadlines/retries/speculation shape *how* the data plane runs,
        # never *what* bytes it produces: not campaign identity.
        a = CampaignSpec()
        b = CampaignSpec(
            task_deadline_s=None,
            max_task_retries=9,
            speculative_frac=0.0,
        )
        assert a.fingerprint() == b.fingerprint()
        assert "task_deadline_s" not in json.dumps(a.to_json_dict())

    def test_supervision_knob_defaults(self):
        spec = CampaignSpec()
        assert spec.task_deadline_s == 30.0
        assert spec.max_task_retries == 2
        assert spec.speculative_frac == 0.9
        assert CampaignSpec(task_deadline_s=None).task_deadline_s is None


class TestJournalHeader:
    def test_round_trip(self):
        spec = CampaignSpec(
            app="warpx", nodes=2, ppn=3, iterations=4, seed=9,
            engine="process",
        )
        header = spec.journal_header()
        assert header["spec_crc32c"] == spec.control_fingerprint()
        # No data plane configured, so the control identity is the
        # full identity — and the rebuilt spec passes the resume check.
        assert spec.control_fingerprint() == spec.fingerprint()
        rebuilt = CampaignSpec.from_journal_header(header)
        assert rebuilt == spec
        assert rebuilt.control_fingerprint() == header["spec_crc32c"]

    def test_data_plane_excluded_from_control_identity(self):
        spec = CampaignSpec(app="nyx", seed=3)
        with_data = dataclasses.replace(spec, data_dir="/tmp/out")
        assert with_data.fingerprint() != spec.fingerprint()
        assert with_data.control_fingerprint() == spec.control_fingerprint()
        assert (
            with_data.journal_header()["spec_crc32c"]
            == spec.journal_header()["spec_crc32c"]
        )

    def test_legacy_header_defaults_to_sim(self):
        # Pre-engine journals have no "engine" key.
        header = CampaignSpec(app="hacc").journal_header()
        del header["engine"]
        assert CampaignSpec.from_journal_header(header).engine == "sim"


class TestLegacyKwargsShim:
    def test_aliases_map(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            spec = CampaignSpec.from_kwargs(
                app_name="warpx",
                num_nodes=2,
                processes_per_node=8,
                num_iterations=5,
                master_seed=11,
            )
        assert spec == CampaignSpec(
            app="warpx", nodes=2, ppn=8, iterations=5, seed=11
        )

    def test_unknown_kwarg_rejected(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with pytest.raises(TypeError, match="unknown campaign kwarg"):
                CampaignSpec.from_kwargs(frobnicate=3)

    def test_conflicting_alias_rejected(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with pytest.raises(TypeError, match="conflicts"):
                CampaignSpec.from_kwargs(nodes=2, num_nodes=3)

    def test_warns_exactly_once_per_process(self, monkeypatch):
        monkeypatch.setattr(
            spec_module, "_warned_legacy_kwargs", False
        )
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            CampaignSpec.from_kwargs(num_nodes=2)
            CampaignSpec.from_kwargs(num_nodes=3)
        deprecations = [
            w for w in caught
            if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
