"""WorkerSupervisor state machine, unit-tested against fake pool handles.

No real pool, no real clock: launches return hand-controlled
``AsyncResult``-shaped fakes and time only moves when the test says so,
which makes deadline, retry, speculation, worker-death, and fallback
transitions exact instead of timing-dependent.
"""

import pytest

from repro.engines.supervisor import SupervisorStats, WorkerSupervisor
from repro.resilience import ResilienceLog, RetryPolicy


class FakeHandle:
    """An AsyncResult stand-in the test resolves by hand."""

    def __init__(self):
        self._value = None
        self._error = None
        self._ready = False

    def succeed(self, value):
        self._value = value
        self._ready = True

    def fail(self, exc):
        self._error = exc
        self._ready = True

    def ready(self):
        return self._ready

    def get(self, timeout=None):
        if self._error is not None:
            raise self._error
        return self._value


class FakeClock:
    """Manual monotonic clock; ``sleep`` advances it."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def sleep(self, seconds):
        self.now += seconds


class Harness:
    """A supervisor wired to recording fakes."""

    def __init__(self, **overrides):
        self.clock = FakeClock()
        self.launches = []  # (rank, attempt) in launch order
        self.handles = []
        self.ingested = []  # (rank, result)
        self.resolved = []
        self.fallbacks = []
        self.log = ResilienceLog()
        kwargs = dict(
            launch=self._launch,
            ingest=lambda rank, result: self.ingested.append(
                (rank, result)
            ),
            fallback=self._fallback,
            retry=RetryPolicy(
                max_attempts=3, base_backoff_s=0.1, jitter_frac=0.0
            ),
            deadline_s=1.0,
            speculative_frac=0.0,
            on_resolved=self.resolved.append,
            log=self.log,
            clock=self.clock,
            sleep=self.clock.sleep,
            poll_interval_s=0.01,
        )
        kwargs.update(overrides)
        self.supervisor = WorkerSupervisor(**kwargs)

    def _launch(self, rank, attempt):
        handle = FakeHandle()
        self.launches.append((rank, attempt))
        self.handles.append(handle)
        return handle

    def _fallback(self, rank):
        self.fallbacks.append(rank)
        return ("fallback", rank)


class TestCleanPath:
    def test_first_try_success_ingests_once(self):
        h = Harness()
        h.supervisor.submit(0)
        h.supervisor.submit(1)
        assert h.launches == [(0, 0), (1, 0)]
        h.handles[0].succeed("r0")
        h.handles[1].succeed("r1")
        h.supervisor.wait_all(timeout=5.0)
        assert h.ingested == [(0, "r0"), (1, "r1")]
        assert h.resolved == [0, 1]
        stats = h.supervisor.stats
        assert stats.tasks == 2
        assert stats.attempts == 2
        assert not stats.recovered

    def test_poll_streams_while_submitting(self):
        h = Harness()
        h.supervisor.submit(0)
        h.handles[0].succeed("r0")
        assert h.supervisor.poll() == 0
        assert h.ingested == [(0, "r0")]
        h.supervisor.submit(1)
        assert h.supervisor.poll() == 1  # rank 1 still pending


class TestDeadline:
    def test_deadline_miss_retries_after_backoff(self):
        h = Harness()
        h.supervisor.submit(0)
        h.clock.now = 1.5  # past the 1.0s deadline
        h.supervisor.poll()
        assert h.supervisor.stats.deadline_misses == 1
        assert h.log.task_deadline_misses == 1
        assert h.launches == [(0, 0)]  # backoff not elapsed yet
        h.clock.now = 1.7  # past next_retry_at = 1.5 + 0.1
        h.supervisor.poll()
        assert h.launches == [(0, 0), (0, 1)]
        assert h.supervisor.stats.retries == 1
        assert h.log.retried_ranks == ["it0000/rank0"]
        h.handles[1].succeed("retry-win")
        h.supervisor.wait_all(timeout=5.0)
        assert h.ingested == [(0, "retry-win")]

    def test_abandoned_attempt_still_wins_if_it_finishes_late(self):
        h = Harness()
        h.supervisor.submit(0)
        h.clock.now = 2.0
        h.supervisor.poll()  # miss + schedule retry
        h.clock.now = 2.2
        h.supervisor.poll()  # retry launched
        assert len(h.handles) == 2
        h.handles[0].succeed("late-original")  # original finishes late
        h.supervisor.poll()
        assert h.ingested == [(0, "late-original")]

    def test_both_attempts_finishing_ingests_once(self):
        h = Harness()
        h.supervisor.submit(0)
        h.clock.now = 2.0
        h.supervisor.poll()
        h.clock.now = 2.2
        h.supervisor.poll()
        h.handles[0].succeed("first")
        h.handles[1].succeed("second")
        h.supervisor.wait_all(timeout=5.0)
        assert len(h.ingested) == 1
        assert h.resolved == [0]

    def test_no_deadline_never_expires(self):
        h = Harness(deadline_s=None)
        h.supervisor.submit(0)
        h.clock.now = 1e6
        h.supervisor.poll()
        assert h.supervisor.stats.deadline_misses == 0
        assert h.launches == [(0, 0)]


class TestWorkerErrors:
    def test_failed_attempt_recorded_and_retried(self):
        h = Harness()
        h.supervisor.submit(0)
        h.handles[0].fail(RuntimeError("worker exploded"))
        h.supervisor.poll()
        assert h.supervisor.stats.worker_errors == 1
        assert h.log.worker_errors == 1
        h.clock.now = 0.2  # past backoff
        h.supervisor.poll()
        assert h.launches == [(0, 0), (0, 1)]
        h.handles[1].succeed("ok")
        h.supervisor.wait_all(timeout=5.0)
        assert h.ingested == [(0, "ok")]


class TestFallback:
    def test_budget_exhausted_falls_back_serially(self):
        h = Harness(
            retry=RetryPolicy(
                max_attempts=2, base_backoff_s=0.1, jitter_frac=0.0
            )
        )
        h.supervisor.submit(0)
        h.handles[0].fail(RuntimeError("boom 1"))
        h.supervisor.poll()
        h.clock.now = 0.2
        h.supervisor.poll()  # retry (launch 2 of 2)
        h.handles[1].fail(RuntimeError("boom 2"))
        h.supervisor.wait_all(timeout=5.0)
        assert h.fallbacks == [0]
        assert h.ingested == [(0, ("fallback", 0))]
        assert h.resolved == [0]
        assert h.supervisor.stats.fallback_ranks == ["it0000/rank0"]
        assert h.log.fallback_ranks == ["it0000/rank0"]
        assert h.log.fallbacks == {"rank-serial": 1}

    def test_late_result_after_fallback_not_ingested(self):
        h = Harness(
            retry=RetryPolicy(max_attempts=1, base_backoff_s=0.1)
        )
        h.supervisor.submit(0)
        h.clock.now = 2.0
        h.supervisor.poll()  # deadline miss -> budget gone -> fallback
        assert h.fallbacks == [0]
        h.handles[0].succeed("too-late")
        h.supervisor.poll()
        assert len(h.ingested) == 1
        assert h.ingested[0] == (0, ("fallback", 0))


class TestWorkerDeath:
    def test_dead_worker_triggers_immediate_retry(self):
        pids = [(101, 102)]
        h = Harness(worker_pids=lambda: pids[0])
        h.supervisor.submit(0)
        h.supervisor.poll()  # baseline pid snapshot
        pids[0] = (101, 103)  # 102 was SIGKILLed and replaced
        h.clock.now = 0.05  # well inside deadline AND backoff
        h.supervisor.poll()
        assert h.supervisor.stats.worker_deaths == 1
        assert h.log.worker_deaths == 1
        # The retry fires on the next poll without waiting out the
        # deadline or the backoff.
        h.supervisor.poll()
        assert h.launches == [(0, 0), (0, 1)]
        h.handles[1].succeed("after-death")
        h.supervisor.wait_all(timeout=5.0)
        assert h.ingested == [(0, "after-death")]

    def test_resolved_tasks_unaffected_by_death(self):
        pids = [(101, 102)]
        h = Harness(worker_pids=lambda: pids[0])
        h.supervisor.submit(0)
        h.handles[0].succeed("done")
        h.supervisor.poll()
        pids[0] = (101, 103)
        h.supervisor.poll()
        assert h.supervisor.stats.worker_deaths == 1
        assert h.launches == [(0, 0)]  # nothing to retry


class TestSpeculation:
    def test_straggler_gets_speculative_duplicate(self):
        h = Harness(deadline_s=60.0, speculative_frac=0.5)
        for rank in range(4):
            h.supervisor.submit(rank)
        # Three finish quickly; rank 3 straggles.
        h.clock.now = 0.2
        for rank in range(3):
            h.handles[rank].succeed(f"r{rank}")
        h.supervisor.poll()
        assert len(h.ingested) == 3
        # Past 2x the median completion time: speculate on rank 3.
        h.clock.now = 5.0
        h.supervisor.poll()
        assert (3, 1) in h.launches
        assert h.supervisor.stats.speculative_launches == 1
        assert h.log.speculative_launches == 1
        h.handles[4].succeed("spec-win")
        h.supervisor.poll()
        assert h.supervisor.stats.speculative_wins == 1
        assert h.ingested[-1] == (3, "spec-win")

    def test_original_win_is_not_a_speculative_win(self):
        h = Harness(deadline_s=60.0, speculative_frac=0.5)
        for rank in range(2):
            h.supervisor.submit(rank)
        h.clock.now = 0.2
        h.handles[0].succeed("r0")
        h.supervisor.poll()
        h.clock.now = 5.0
        h.supervisor.poll()  # speculative duplicate of rank 1
        assert h.supervisor.stats.speculative_launches == 1
        h.handles[1].succeed("original")  # original finishes first
        h.supervisor.poll()
        assert h.supervisor.stats.speculative_wins == 0
        assert h.ingested[-1] == (1, "original")

    def test_no_speculation_before_frac_completed(self):
        h = Harness(deadline_s=60.0, speculative_frac=1.0)
        for rank in range(3):
            h.supervisor.submit(rank)
        h.clock.now = 0.2
        h.handles[0].succeed("r0")
        h.supervisor.poll()
        h.clock.now = 50.0
        h.supervisor.poll()
        assert h.supervisor.stats.speculative_launches == 0

    def test_disabled_speculation_never_duplicates(self):
        h = Harness(deadline_s=60.0, speculative_frac=0.0)
        h.supervisor.submit(0)
        h.supervisor.submit(1)
        h.clock.now = 0.1
        h.handles[0].succeed("r0")
        h.supervisor.poll()
        h.clock.now = 30.0
        h.supervisor.poll()
        assert len(h.launches) == 2


class TestWaitAll:
    def test_timeout_raises(self):
        h = Harness(deadline_s=None)
        h.supervisor.submit(0)  # never completes, no deadline
        with pytest.raises(TimeoutError, match="1 rank task"):
            h.supervisor.wait_all(timeout=3.0)

    def test_empty_supervisor_returns_immediately(self):
        h = Harness()
        h.supervisor.wait_all(timeout=0.0)
        assert h.ingested == []


class TestValidationAndStats:
    def test_bad_deadline_rejected(self):
        with pytest.raises(ValueError, match="deadline_s"):
            Harness(deadline_s=0.0)

    def test_bad_speculative_frac_rejected(self):
        with pytest.raises(ValueError, match="speculative_frac"):
            Harness(speculative_frac=1.5)

    def test_stats_accumulate_across_instances(self):
        stats = SupervisorStats()
        for _ in range(2):
            h = Harness(stats=stats)
            h.supervisor.submit(0)
            h.handles[0].succeed("ok")
            h.supervisor.wait_all(timeout=1.0)
        assert stats.tasks == 2
        assert stats.attempts == 2

    def test_works_without_log_or_callbacks(self):
        h = Harness(log=None, on_resolved=None)
        h.supervisor.submit(0)
        h.clock.now = 2.0
        h.supervisor.poll()
        h.clock.now = 2.2
        h.supervisor.poll()
        h.handles[1].succeed("ok")
        h.supervisor.wait_all(timeout=5.0)
        assert h.ingested == [(0, "ok")]
