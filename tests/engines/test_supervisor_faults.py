"""Real-plane fault injection: the supervised pool under actual failures.

These tests SIGKILL, stall, and crash real pool workers and check the
three guarantees the supervisor exists for: the campaign never hangs,
the compressed bytes stay identical to a clean run, and shared-memory
segments never leak — even when a worker dies mid-rank or a dump is
abandoned halfway.
"""

import threading

import pytest

from repro.engines import CampaignSpec, PoolDataPlane, run_campaign
from repro.engines.shm import active_segments
from repro.io.async_io import AsyncWriter
from repro.resilience import FaultInjector, FaultPlan, WorkerFault

#: Generous wall-clock bound for one faulted campaign; a supervision bug
#: (the pre-supervisor code hung forever on a SIGKILLed worker) fails
#: the test instead of wedging the suite.
_CAMPAIGN_TIMEOUT_S = 90.0


def small_spec(**overrides) -> CampaignSpec:
    base = dict(
        nodes=1,
        ppn=2,
        iterations=3,
        seed=5,
        engine="process",
        workers=2,
        data_edge=8,
        data_fields=1,
        data_block_bytes=2048,
        task_deadline_s=10.0,
        speculative_frac=0.0,  # keep 1-core CI timing-independent
    )
    base.update(overrides)
    return CampaignSpec(**base)


def run_bounded(fn, timeout=_CAMPAIGN_TIMEOUT_S):
    """Run ``fn`` on a thread; fail (don't hang) if it never returns."""
    outcome = {}

    def target():
        try:
            outcome["value"] = fn()
        except BaseException as exc:  # re-raised on the test thread
            outcome["error"] = exc

    thread = threading.Thread(target=target, daemon=True)
    thread.start()
    thread.join(timeout)
    if thread.is_alive():
        pytest.fail(
            f"campaign did not finish within {timeout}s — the "
            f"supervisor failed to bound a faulted task"
        )
    if "error" in outcome:
        raise outcome["error"]
    return outcome["value"]


def worker_faults(kind, **overrides):
    fault = dict(kind=kind, rank=1, iteration=1, **overrides)
    return {"worker": fault}


@pytest.fixture(scope="module")
def clean_crc(tmp_path_factory):
    """Block CRC32C map of an unfaulted process-engine campaign."""
    data_dir = str(tmp_path_factory.mktemp("clean"))
    report = run_bounded(
        lambda: run_campaign(small_spec(data_dir=data_dir))
    )
    assert report.data.block_crc32c
    return report.data.block_crc32c


class TestWorkerKill:
    def test_sigkilled_worker_never_hangs_the_campaign(
        self, tmp_path, clean_crc
    ):
        # Regression: before supervision, the pool silently respawned
        # the killed child and dump() blocked forever on result.get().
        spec = small_spec(
            data_dir=str(tmp_path), faults=worker_faults("kill")
        )
        report = run_bounded(lambda: run_campaign(spec))
        sup = report.data.supervisor
        assert sup.worker_deaths >= 1
        assert sup.retries >= 1
        assert "it0001/rank1" in sup.retried_ranks
        assert report.data.block_crc32c == clean_crc

    def test_report_names_retried_rank(self, tmp_path):
        spec = small_spec(
            data_dir=str(tmp_path), faults=worker_faults("kill")
        )
        report = run_bounded(lambda: run_campaign(spec))
        resilience = report.result.resilience
        assert resilience.task_retries >= 1
        assert "it0001/rank1" in resilience.retried_ranks
        assert ("worker-kill", 1) in resilience.injected
        assert "retried ranks:       it0001/rank1" in resilience.format()

    def test_recovery_does_not_leak_into_metrics(self, tmp_path):
        # Wall-clock supervisor tallies must stay out of as_metrics():
        # the metric dict feeds the byte-compared campaign report.
        spec = small_spec(
            data_dir=str(tmp_path), faults=worker_faults("kill")
        )
        report = run_bounded(lambda: run_campaign(spec))
        metrics = report.result.resilience.as_metrics()
        assert not any("task" in key or "worker_" in key for key in metrics)


class TestWorkerStall:
    def test_stalled_worker_blows_deadline_and_retries(
        self, tmp_path, clean_crc
    ):
        spec = small_spec(
            data_dir=str(tmp_path),
            task_deadline_s=0.5,
            faults=worker_faults("stall", stall_s=4.0),
        )
        report = run_bounded(lambda: run_campaign(spec))
        sup = report.data.supervisor
        assert sup.deadline_misses >= 1
        assert report.data.block_crc32c == clean_crc

    def test_short_stall_within_deadline_is_absorbed(
        self, tmp_path, clean_crc
    ):
        spec = small_spec(
            data_dir=str(tmp_path),
            task_deadline_s=30.0,
            faults=worker_faults("stall", stall_s=0.3),
        )
        report = run_bounded(lambda: run_campaign(spec))
        sup = report.data.supervisor
        assert sup.deadline_misses == 0
        assert sup.retries == 0
        assert report.data.block_crc32c == clean_crc


class TestWorkerError:
    def test_raised_task_is_recorded_and_retried(
        self, tmp_path, clean_crc
    ):
        # Regression: the old error callback swallowed the exception
        # without a trace; now it is counted and the task re-executed.
        spec = small_spec(
            data_dir=str(tmp_path), faults=worker_faults("error")
        )
        report = run_bounded(lambda: run_campaign(spec))
        sup = report.data.supervisor
        assert sup.worker_errors >= 1
        assert sup.retries >= 1
        assert report.result.resilience.worker_errors >= 1
        assert report.data.block_crc32c == clean_crc


class TestSerialFallback:
    def test_exhausted_budget_compresses_rank_in_parent(
        self, tmp_path, clean_crc
    ):
        # Every launch of it0001/rank1 errors out (attempts=99 covers
        # the whole budget), so the parent must compress it serially —
        # with identical bytes.
        spec = small_spec(
            data_dir=str(tmp_path),
            max_task_retries=1,
            faults=worker_faults("error", attempts=99),
        )
        report = run_bounded(lambda: run_campaign(spec))
        sup = report.data.supervisor
        assert sup.fallback_ranks == ["it0001/rank1"]
        resilience = report.result.resilience
        assert resilience.fallback_ranks == ("it0001/rank1",)
        assert ("rank-serial", 1) in resilience.fallbacks
        assert "fallback ranks:      it0001/rank1" in resilience.format()
        assert report.data.block_crc32c == clean_crc

    def test_killed_every_time_still_completes(self, tmp_path, clean_crc):
        spec = small_spec(
            data_dir=str(tmp_path),
            max_task_retries=1,
            task_deadline_s=5.0,
            faults=worker_faults("kill", attempts=99),
        )
        report = run_bounded(lambda: run_campaign(spec))
        sup = report.data.supervisor
        assert sup.fallback_ranks == ["it0001/rank1"]
        assert report.data.block_crc32c == clean_crc


class TestShmHygieneUnderFailure:
    """Satellite: no repro-shm-* leaks on any failure path.

    The suite-wide autouse leak fixture re-checks after every test; the
    assertions here additionally pin down *when* the segments are gone.
    """

    def _plane(self, tmp_path, fault=None, **overrides):
        spec = small_spec(data_dir=str(tmp_path), **overrides)
        injector = None
        if fault is not None:
            injector = FaultInjector(FaultPlan(worker=fault), seed=3)
        return PoolDataPlane(spec, injector=injector)

    def test_worker_death_mid_rank_releases_segments(self, tmp_path):
        plane = self._plane(
            tmp_path, fault=WorkerFault(kind="kill", rank=0, iteration=0)
        )
        try:
            run_bounded(lambda: plane.dump(0))
            assert plane.registry.live == []
        finally:
            plane.close()
        assert active_segments() == []

    def test_timed_out_dump_releases_segments(self, tmp_path, monkeypatch):
        def stuck_drain(self, timeout=None):
            raise TimeoutError("injected: writer never drained")

        monkeypatch.setattr(AsyncWriter, "drain", stuck_drain)
        plane = self._plane(tmp_path)
        try:
            with pytest.raises(TimeoutError, match="never drained"):
                run_bounded(lambda: plane.dump(0))
            assert plane.registry.live == []
            assert plane.stats.containers == {}  # nothing published
        finally:
            plane.abort()
        assert active_segments() == []

    def test_abort_racing_close_is_safe(self, tmp_path):
        plane = self._plane(tmp_path)
        run_bounded(lambda: plane.dump(0))
        errors = []

        def call(fn):
            try:
                fn()
            except Exception as exc:  # pragma: no cover - the failure
                errors.append(exc)

        threads = [
            threading.Thread(target=call, args=(plane.abort,)),
            threading.Thread(target=call, args=(plane.close,)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(_CAMPAIGN_TIMEOUT_S)
            assert not thread.is_alive()
        assert errors == []
        assert plane.registry.live == []
        assert active_segments() == []
