"""Semantics of the three solution configurations."""

import pytest

from repro.apps import NyxModel
from repro.framework import (
    ProcessRuntime,
    async_io_config,
    baseline_config,
    ours_config,
)
from repro.simulator import ZERO_NOISE


def _runtime(config):
    app = NyxModel(seed=91)
    rt = ProcessRuntime(
        rank=0, app=app, config=config, node_size=4, noise=ZERO_NOISE
    )
    rt.observe_iteration(app.iteration_profile(0))
    return rt


class TestBaselineSemantics:
    def test_baseline_jobs_are_whole_raw_fields(self):
        rt = _runtime(baseline_config())
        plan = rt.plan_dump(1)
        assert len(plan.blocks) == len(rt.app.fields)
        for block in plan.blocks:
            assert block.predicted_ratio == 1.0
            assert block.predicted_bytes == rt.app.partition_nbytes()
            assert block.predicted_compression_s == 0.0

    def test_baseline_writes_strictly_after_computation(self):
        rt = _runtime(baseline_config())
        plan = rt.plan_dump(1)
        rt.build_jobs(plan)
        outcome = rt.execute_dump(plan, 1)
        length = outcome.execution.computation_length
        for interval in outcome.execution.io.values():
            assert interval.start >= length - 1e-9

    def test_async_writes_overlap_computation(self):
        rt = _runtime(async_io_config())
        plan = rt.plan_dump(1)
        rt.build_jobs(plan)
        outcome = rt.execute_dump(plan, 1)
        length = outcome.execution.computation_length
        assert any(
            interval.start < length
            for interval in outcome.execution.io.values()
        )

    def test_ours_compresses(self):
        rt = _runtime(ours_config())
        plan = rt.plan_dump(1)
        raw = sum(b.raw_bytes for b in plan.blocks)
        predicted = sum(b.predicted_bytes for b in plan.blocks)
        assert predicted < raw / 4

    def test_no_compression_solutions_write_raw_volume(self):
        for config in (baseline_config(), async_io_config()):
            rt = _runtime(config)
            plan = rt.plan_dump(1)
            total = sum(b.predicted_bytes for b in plan.blocks)
            assert total == rt.app.partition_nbytes() * len(rt.app.fields)

    def test_ours_overhead_smallest_single_process(self):
        overheads = {}
        for name, config in (
            ("baseline", baseline_config()),
            ("previous", async_io_config()),
            ("ours", ours_config()),
        ):
            rt = _runtime(config)
            plan = rt.plan_dump(1)
            rt.build_jobs(plan)
            overheads[name] = rt.execute_dump(plan, 1).relative_overhead
        assert (
            overheads["ours"]
            < overheads["previous"]
            < overheads["baseline"]
        )

    def test_config_overrides_respected(self):
        config = baseline_config(dump_period=5)
        assert config.dump_period == 5
        assert not config.use_compression

    def test_solutions_differ_only_where_documented(self):
        base = baseline_config()
        asynchronous = async_io_config()
        assert base.scheduler == asynchronous.scheduler
        assert base.use_compression == asynchronous.use_compression
        assert base.async_background != asynchronous.async_background
        assert (
            base.overlap_with_computation
            != asynchronous.overlap_with_computation
        )
