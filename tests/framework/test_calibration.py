"""Tests for model calibration from measured samples."""

import numpy as np
import pytest

from repro.compression import CompressionThroughputModel
from repro.framework.calibration import (
    fit_compression_model,
    fit_io_model,
)
from repro.io import IoThroughputModel


def _io_samples(model: IoThroughputModel, rng, noise=0.0):
    sizes = [2**k for k in range(16, 28)]
    return [
        (
            s,
            model.write_time(s) * (1.0 + noise * float(rng.normal())),
        )
        for s in sizes
    ]


def _compression_samples(model, shared, rng, noise=0.0):
    sizes = [2**k for k in range(18, 26)]
    return [
        (
            s,
            model.compression_time(s, shared_tree=shared)
            * (1.0 + noise * float(rng.normal())),
        )
        for s in sizes
    ]


class TestIoFit:
    def test_recovers_exact_constants(self, rng):
        truth = IoThroughputModel(
            node_bandwidth_bytes_per_s=1.2e9,
            processes_per_node=4,
            write_latency_s=0.003,
        )
        fitted, quality = fit_io_model(
            _io_samples(truth, rng), processes_per_node=4
        )
        assert fitted.per_process_bandwidth == pytest.approx(
            truth.per_process_bandwidth, rel=1e-6
        )
        assert fitted.write_latency_s == pytest.approx(0.003, rel=1e-6)
        assert quality.r_squared > 0.999999

    def test_tolerates_measurement_noise(self, rng):
        truth = IoThroughputModel()
        fitted, quality = fit_io_model(
            _io_samples(truth, rng, noise=0.03)
        )
        assert fitted.per_process_bandwidth == pytest.approx(
            truth.per_process_bandwidth, rel=0.15
        )
        assert quality.r_squared > 0.95

    def test_fitted_model_predicts(self, rng):
        truth = IoThroughputModel()
        fitted, _ = fit_io_model(_io_samples(truth, rng))
        probe = 5 * 2**20
        assert fitted.write_time(probe) == pytest.approx(
            truth.write_time(probe), rel=1e-6
        )

    def test_too_few_samples(self):
        with pytest.raises(ValueError, match="two samples"):
            fit_io_model([(100, 0.1)])

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            fit_io_model([(100, 0.1), (200, -0.1)])

    def test_decreasing_times_rejected(self):
        with pytest.raises(ValueError, match="bandwidth"):
            fit_io_model([(100, 1.0), (10_000_000, 0.5), (20_000_000, 0.2)])


class TestCompressionFit:
    def test_recovers_throughput_and_setup(self, rng):
        truth = CompressionThroughputModel(
            throughput_bytes_per_s=300e6, setup_s=0.001, tree_build_s=0.006
        )
        fitted, quality = fit_compression_model(
            _compression_samples(truth, True, rng),
            _compression_samples(truth, False, rng),
        )
        assert fitted.throughput_bytes_per_s == pytest.approx(
            300e6, rel=1e-6
        )
        assert fitted.setup_s == pytest.approx(0.001, rel=1e-5)
        assert fitted.tree_build_s == pytest.approx(0.006, rel=1e-5)
        assert quality.r_squared > 0.999

    def test_shared_only_keeps_default_tree_cost(self, rng):
        truth = CompressionThroughputModel()
        fitted, _ = fit_compression_model(
            _compression_samples(truth, True, rng)
        )
        assert fitted.tree_build_s == truth.tree_build_s

    def test_round_trip_with_real_timings(self, rng):
        """Calibrate from actual Python-compressor timings and assert the
        fitted model's *structure*: physically sensible coefficients and
        a monotone size -> time round-trip over the calibration range.
        (Comparing against a fresh wall-clock measurement is flaky on
        slow or warm-up-heavy machines, so we deliberately don't.)"""
        import time

        from repro.compression import SZCompressor, build_codebook

        compressor = SZCompressor()
        field = np.cumsum(rng.normal(size=2**17))
        hist = compressor.histogram(field, 0.01)
        shared = build_codebook(
            hist, force_symbols=(compressor.sentinel,)
        )
        samples = []
        for count in (2**13, 2**15, 2**17):
            block = field[:count]
            t0 = time.perf_counter()
            compressor.compress(block, 0.01, shared_codebook=shared)
            samples.append((block.nbytes, time.perf_counter() - t0))
        fitted, _ = fit_compression_model(samples)

        # Fitted coefficients are physically meaningful on any machine:
        # non-negative setup cost, positive finite throughput.
        assert fitted.setup_s >= 0.0
        assert 0.0 < fitted.throughput_bytes_per_s < np.inf

        # Structural round-trip: predictions are positive and strictly
        # monotone in size across (and beyond) the calibration range,
        # and a held-out interior size interpolates its neighbours.
        sizes = [2**12, 2**13, 2**14, 2**15, 2**17, 2**18]
        times = [fitted.compression_time(s) for s in sizes]
        assert all(t > 0.0 for t in times)
        assert times == sorted(times) and len(set(times)) == len(times)
        lo = fitted.compression_time(2**13)
        hi = fitted.compression_time(2**15)
        assert lo < fitted.compression_time(2**14) < hi
