"""Integration tests: full campaigns across nodes and iterations."""

import pytest

from repro.apps import NyxModel, WarpXModel
from repro.framework import (
    CampaignRunner,
    async_io_config,
    baseline_config,
    compare,
    format_table,
    ours_config,
)
from repro.simulator import ClusterSpec


def _run(app, config, solution, nodes=1, ppn=4, iterations=5, seed=1):
    cluster = ClusterSpec(num_nodes=nodes, processes_per_node=ppn)
    runner = CampaignRunner(app, cluster, config, solution=solution, seed=seed)
    return runner.run(iterations)


@pytest.fixture(scope="module")
def nyx():
    return NyxModel(seed=2)


class TestCampaignMechanics:
    def test_first_iteration_never_dumps(self, nyx):
        result = _run(nyx, ours_config(), "ours", iterations=3)
        assert not result.records[0].dumped
        assert result.records[1].dumped

    def test_dump_period_respected(self, nyx):
        result = _run(
            nyx, ours_config(dump_period=3), "ours", iterations=8
        )
        dumped = [r.iteration for r in result.records if r.dumped]
        assert dumped == [1, 4, 7]

    def test_overheads_nonnegative(self, nyx):
        result = _run(nyx, ours_config(), "ours", iterations=5)
        for record in result.records:
            assert record.overhead_s >= 0.0
            assert record.overall_s >= record.computation_s

    def test_non_dump_iterations_have_no_overhead(self, nyx):
        result = _run(nyx, ours_config(dump_period=2), "ours", iterations=6)
        for record in result.records:
            if not record.dumped:
                assert record.overhead_s == 0.0

    def test_per_rank_overheads_recorded(self, nyx):
        result = _run(nyx, ours_config(), "ours", nodes=1, ppn=4)
        dump = result.dump_records()[0]
        assert len(dump.per_rank_overhead) == 4

    def test_totals_consistent(self, nyx):
        result = _run(nyx, ours_config(), "ours", iterations=4)
        assert result.total_time == pytest.approx(
            result.total_computation + result.total_overhead
        )

    def test_virtual_clock_advances(self, nyx):
        cluster = ClusterSpec(num_nodes=1, processes_per_node=2)
        runner = CampaignRunner(nyx, cluster, ours_config(), seed=1)
        result = runner.run(3)
        assert runner.simulation.now == pytest.approx(result.total_time)


class TestSolutionOrdering:
    """The paper's headline ordering must hold: ours < previous < baseline."""

    @pytest.fixture(scope="class")
    def overheads(self, nyx):
        out = {}
        for name, cfg in (
            ("baseline", baseline_config()),
            ("previous", async_io_config()),
            ("ours", ours_config()),
        ):
            out[name] = _run(nyx, cfg, name, iterations=5)
        return out

    def test_ordering(self, overheads):
        b = overheads["baseline"].mean_relative_overhead
        p = overheads["previous"].mean_relative_overhead
        o = overheads["ours"].mean_relative_overhead
        assert o < p < b

    def test_improvement_factors_in_paper_range(self, overheads):
        comp = compare(
            overheads["baseline"], overheads["previous"], overheads["ours"]
        )
        # Paper: up to 3.8x vs baseline, 2.6x vs async-only.  The shape
        # requirement: clearly >2x vs baseline and >1.5x vs previous.
        assert comp.improvement_over_baseline > 2.0
        assert comp.improvement_over_previous > 1.5

    def test_warpx_ordering_too(self):
        app = WarpXModel(seed=2)
        results = {}
        for name, cfg in (
            ("baseline", baseline_config()),
            ("previous", async_io_config()),
            ("ours", ours_config()),
        ):
            results[name] = _run(app, cfg, name, iterations=4)
        assert (
            results["ours"].mean_relative_overhead
            < results["previous"].mean_relative_overhead
            < results["baseline"].mean_relative_overhead
        )


class TestBalancingIntegration:
    def test_balancing_helps_at_end_stage(self):
        # End-of-run Nyx data has up to 20x intra-node ratio spread;
        # balancing should not hurt and typically helps.
        app = NyxModel(seed=5, total_iterations=10)
        with_bal = _run(
            app, ours_config(use_balancing=True), "bal", iterations=10
        )
        without = _run(
            app, ours_config(use_balancing=False), "nobal", iterations=10
        )
        late_with = [r for r in with_bal.dump_records() if r.iteration >= 7]
        late_without = [
            r for r in without.dump_records() if r.iteration >= 7
        ]
        mean_with = sum(r.relative_overhead for r in late_with) / len(
            late_with
        )
        mean_without = sum(
            r.relative_overhead for r in late_without
        ) / len(late_without)
        assert mean_with <= mean_without * 1.05

    def test_multi_node_campaign_runs(self, nyx):
        result = _run(nyx, ours_config(), "ours", nodes=2, ppn=4)
        assert result.dump_records()


class TestScaling:
    def test_baseline_degrades_with_scale_ours_stays_flat(self):
        app = NyxModel(seed=3)
        base_small = _run(
            app, baseline_config(), "b", nodes=2, ppn=4, iterations=4
        ).mean_relative_overhead
        base_large = _run(
            app, baseline_config(), "b", nodes=16, ppn=4, iterations=4
        ).mean_relative_overhead
        ours_small = _run(
            app, ours_config(), "o", nodes=2, ppn=4, iterations=4
        ).mean_relative_overhead
        ours_large = _run(
            app, ours_config(), "o", nodes=16, ppn=4, iterations=4
        ).mean_relative_overhead
        assert base_large > base_small * 1.1
        # Ours moves 16x less data; the absolute growth must be smaller.
        assert (ours_large - ours_small) < (base_large - base_small) / 3


class TestReport:
    def test_format_table(self):
        text = format_table(
            [("a", "1.0"), ("bb", "2.0")], headers=("name", "value")
        )
        assert "name" in text and "----" in text and "bb" in text

    def test_comparison_handles_zero_ours(self, nyx):
        result = _run(nyx, ours_config(), "ours", iterations=3)
        comp = compare(result, result, result)
        assert comp.improvement_over_baseline == pytest.approx(1.0)


class TestReportTables:
    def test_campaign_summary_table(self, nyx):
        results = {
            "ours": _run(nyx, ours_config(), "ours", iterations=3),
        }
        from repro.framework import campaign_summary_table

        text = campaign_summary_table(results)
        assert "ours" in text
        assert "I/O overhead" in text

    def test_iteration_table(self, nyx):
        from repro.framework import iteration_table

        result = _run(nyx, ours_config(), "ours", iterations=4)
        text = iteration_table(result)
        assert text.count("dump") == len(result.dump_records())
        assert "overhead" in text


class TestConfigPropagation:
    def test_subfiles_reduce_io_times(self, nyx):
        mono = _run(
            nyx, baseline_config(num_subfiles=1), "b1", nodes=8, ppn=4,
            iterations=3,
        ).mean_relative_overhead
        split = _run(
            nyx, baseline_config(num_subfiles=8), "b8", nodes=8, ppn=4,
            iterations=3,
        ).mean_relative_overhead
        assert split < mono

    def test_subfiles_noop_on_single_node(self, nyx):
        mono = _run(
            nyx, baseline_config(num_subfiles=1), "b1", nodes=1,
            iterations=3,
        ).mean_relative_overhead
        split = _run(
            nyx, baseline_config(num_subfiles=8), "b8", nodes=1,
            iterations=3,
        ).mean_relative_overhead
        assert split == pytest.approx(mono, rel=1e-6)

    def test_longer_dump_period_amortizes_overhead(self, nyx):
        frequent = _run(
            nyx, ours_config(dump_period=1), "p1", iterations=7
        )
        sparse = _run(
            nyx, ours_config(dump_period=3), "p3", iterations=7
        )
        # Same per-dump cost, fewer dumps: total overhead shrinks.
        assert sparse.total_overhead < frequent.total_overhead

    def test_invalid_subfiles_rejected(self):
        from repro.framework import FrameworkConfig

        with pytest.raises(ValueError):
            FrameworkConfig(num_subfiles=0)


class TestDeterminism:
    def test_same_seed_same_result(self, nyx):
        a = _run(nyx, ours_config(), "a", iterations=4, seed=9)
        b = _run(nyx, ours_config(), "b", iterations=4, seed=9)
        for ra, rb in zip(a.records, b.records):
            assert ra.overall_s == pytest.approx(rb.overall_s)
            assert ra.computation_s == pytest.approx(rb.computation_s)

    def test_different_seed_different_noise(self, nyx):
        a = _run(nyx, ours_config(), "a", iterations=4, seed=9)
        b = _run(nyx, ours_config(), "b", iterations=4, seed=10)
        dumps_a = [r.overall_s for r in a.dump_records()]
        dumps_b = [r.overall_s for r in b.dump_records()]
        assert dumps_a != dumps_b

    def test_oracle_mode_not_worse(self, nyx):
        predicted = _run(
            nyx, ours_config(), "p", iterations=5, seed=9
        ).mean_relative_overhead
        oracle = _run(
            nyx,
            ours_config(oracle_scheduling=True),
            "o",
            iterations=5,
            seed=9,
        ).mean_relative_overhead
        assert oracle <= predicted * 1.02


class TestFilesystemAccounting:
    def test_writes_recorded_per_dump(self, nyx):
        cluster = ClusterSpec(num_nodes=1, processes_per_node=2)
        runner = CampaignRunner(nyx, cluster, ours_config(), seed=4)
        runner.run(3)  # two dumps
        fs = runner.filesystem
        blocks_per_dump = (
            cluster.total_processes
            * len(nyx.fields)
            * runner.runtimes[0].blocks_per_field()
        )
        assert len(fs.writes) == 2 * blocks_per_dump
        assert fs.total_bytes > 0
        assert fs.achieved_bandwidth() > 0

    def test_compressed_campaign_writes_less(self, nyx):
        cluster = ClusterSpec(num_nodes=1, processes_per_node=2)
        ours = CampaignRunner(nyx, cluster, ours_config(), seed=4)
        ours.run(2)
        base = CampaignRunner(nyx, cluster, baseline_config(), seed=4)
        base.run(2)
        assert ours.filesystem.total_bytes < base.filesystem.total_bytes / 4
