"""Tests for the Section 4.4 overflow path in the modelled runtime."""

import numpy as np
import pytest

from repro.apps import NyxModel
from repro.framework import ProcessRuntime, ours_config
from repro.simulator import ZERO_NOISE


class _OverflowingNyx(NyxModel):
    """A Nyx whose actual ratios undershoot predictions by 2x, so every
    block compresses to twice the reserved size."""

    def block_ratios(self, rank, iteration, blocks_per_field, node_size,
                     stage=None):
        ratios = super().block_ratios(
            rank, iteration, blocks_per_field, node_size, stage
        )
        return {name: values / 2.0 for name, values in ratios.items()}


def _run_one_dump(app):
    runtime = ProcessRuntime(
        rank=0, app=app, config=ours_config(), node_size=4, noise=ZERO_NOISE
    )
    runtime.observe_iteration(app.iteration_profile(0))
    plan = runtime.plan_dump(1)
    runtime.build_jobs(plan)
    return runtime.execute_dump(plan, 1)


class TestOverflow:
    def test_no_overflow_with_accurate_predictions(self):
        # With zero noise, first-dump predictions use base ratios while
        # actuals carry rank multipliers; pick a mid-node rank whose
        # multiplier is ~1 by construction of the second dump.
        app = NyxModel(seed=14)
        runtime = ProcessRuntime(
            rank=0, app=app, config=ours_config(), node_size=4,
            noise=ZERO_NOISE,
        )
        runtime.observe_iteration(app.iteration_profile(0))
        plan = runtime.plan_dump(1)
        runtime.build_jobs(plan)
        runtime.execute_dump(plan, 1)
        # Second dump predicts from the first dump's actuals; residual
        # drift is ~1.45 % so overflow stays tiny relative to the data.
        plan2 = runtime.plan_dump(2)
        runtime.build_jobs(plan2)
        outcome = runtime.execute_dump(plan2, 2)
        raw = sum(b.raw_bytes for b in plan2.blocks)
        assert outcome.overflow_bytes < raw * 0.01

    def test_underprediction_triggers_overflow(self):
        outcome = _run_one_dump(_OverflowingNyx(seed=14))
        assert outcome.overflow_bytes > 0
        assert len(outcome.execution.extra_io) == 1

    def test_overflow_task_queued_after_everything(self):
        outcome = _run_one_dump(_OverflowingNyx(seed=14))
        (extra,) = outcome.execution.extra_io
        last_planned = max(
            iv.end for iv in outcome.execution.io.values()
        )
        assert extra.start >= last_planned - 1e-9

    def test_overflow_extends_makespan(self):
        outcome = _run_one_dump(_OverflowingNyx(seed=14))
        (extra,) = outcome.execution.extra_io
        assert outcome.execution.io_makespan == pytest.approx(
            extra.end - outcome.execution.begin
        )

    def test_overflow_bytes_counted_exactly(self):
        app = _OverflowingNyx(seed=14)
        runtime = ProcessRuntime(
            rank=0, app=app, config=ours_config(), node_size=4,
            noise=ZERO_NOISE,
        )
        runtime.observe_iteration(app.iteration_profile(0))
        plan = runtime.plan_dump(1)
        runtime.build_jobs(plan)
        outcome = runtime.execute_dump(plan, 1)
        expected = sum(
            max(0, size - b.predicted_bytes)
            for b, size in zip(plan.blocks, outcome.actual_sizes)
        )
        assert outcome.overflow_bytes == expected

    def test_no_compression_never_overflows(self):
        from repro.framework import baseline_config

        app = _OverflowingNyx(seed=14)
        runtime = ProcessRuntime(
            rank=0, app=app, config=baseline_config(), node_size=4,
            noise=ZERO_NOISE,
        )
        runtime.observe_iteration(app.iteration_profile(0))
        plan = runtime.plan_dump(1)
        runtime.build_jobs(plan)
        outcome = runtime.execute_dump(plan, 1)
        assert outcome.execution.extra_io == ()
