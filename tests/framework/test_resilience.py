"""End-to-end fault campaigns: graceful degradation and reproducibility."""

import pytest

from repro.apps import NyxModel
from repro.framework import CampaignRunner, FrameworkConfig, ours_config
from repro.resilience import (
    BandwidthFault,
    CompressionFault,
    FaultInjector,
    FaultPlan,
    RetryPolicy,
    StallFault,
    StragglerFault,
    WriteErrorFault,
)
from repro.simulator import ClusterSpec
from repro.telemetry import Tracer

_PLAN = FaultPlan(
    stall=StallFault(probability=0.15, mean_duration_s=0.3),
    write_error=WriteErrorFault(probability=0.25),
    bandwidth=BandwidthFault(probability=0.2, min_factor=0.1),
    compression=CompressionFault(probability=0.1),
    straggler=StragglerFault(ranks=(0,), io_factor=2.5,
                             compression_factor=1.5),
)
_CLUSTER = ClusterSpec(num_nodes=2, processes_per_node=2)


def _run(plan=_PLAN, seed=7, iterations=6, tracer=None, config=None):
    runner = CampaignRunner(
        NyxModel(seed=seed),
        _CLUSTER,
        config or ours_config(),
        seed=seed,
        injector=FaultInjector(plan, seed=seed) if plan else None,
        retry=RetryPolicy(max_attempts=4, deadline_s=5.0),
        **({"tracer": tracer} if tracer else {}),
    )
    return runner.run(iterations)


class TestFaultCampaign:
    def test_completes_with_populated_report(self):
        result = _run()
        report = result.resilience
        assert report is not None
        injected = dict(report.injected)
        # Every configured fault class fired at least once.
        for kind in (
            "stall", "write_error", "bandwidth", "compression", "straggler"
        ):
            assert injected.get(kind, 0) > 0, kind
        assert report.retries > 0
        assert report.retry_successes > 0
        assert report.total_fallbacks > 0
        assert report.straggler_ranks == (0,)
        # Every exhausted write was deferred, not lost.
        assert report.deferred_writes >= report.write_failures

    def test_same_seed_reproduces_exactly(self):
        a = _run()
        b = _run()
        assert a.resilience == b.resilience
        assert a.total_time == pytest.approx(b.total_time)
        assert [r.overall_s for r in a.records] == pytest.approx(
            [r.overall_s for r in b.records]
        )

    def test_different_seed_differs(self):
        a = _run(seed=7)
        b = _run(seed=8)
        assert a.resilience != b.resilience

    def test_faults_cost_time_not_correctness(self):
        clean = _run(plan=None)
        faulty = _run()
        assert clean.resilience is None
        assert faulty.total_time > clean.total_time
        assert len(faulty.records) == len(clean.records)

    def test_resilience_metrics_merged(self):
        result = _run()
        assert result.metrics["resilience.injected"] == float(
            result.resilience.total_injected
        )
        assert result.metrics["resilience.retries"] == float(
            result.resilience.retries
        )
        clean = _run(plan=None)
        assert not any(
            k.startswith("resilience.") for k in clean.metrics
        )

    def test_telemetry_names_emitted(self):
        tracer = Tracer()
        result = _run(tracer=tracer, iterations=4)
        counters = tracer.recorder.counters
        for name in ("fault.injected", "io.retry", "runtime.fallback"):
            assert counters.get(name, 0) > 0, name
        events = {e.name for e in tracer.recorder.events}
        assert {"fault.injected", "io.retry", "runtime.fallback"} <= events
        assert result.resilience.retries == counters["io.retry"]

    def test_write_error_only_plan(self):
        plan = FaultPlan(write_error=WriteErrorFault(probability=0.3))
        result = _run(plan=plan)
        report = result.resilience
        assert set(dict(report.injected)) == {"write_error"}
        assert report.retries > 0

    def test_overrun_guard_defers_io(self):
        # Saturating stalls force dumps past the overrun deadline.
        plan = FaultPlan(
            stall=StallFault(probability=0.9, mean_duration_s=2.0)
        )
        config = ours_config()
        import dataclasses

        config = dataclasses.replace(config, overrun_deadline_frac=0.2)
        result = _run(plan=plan, config=config)
        report = result.resilience
        assert report.overrun_iterations > 0
        assert dict(report.fallbacks).get("defer-io", 0) > 0


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs,field",
        [
            ({"scheduler": ""}, "FrameworkConfig.scheduler"),
            ({"scheduler": "NoSuchAlgorithm"},
             "FrameworkConfig.scheduler"),
            ({"block_bytes": 0}, "FrameworkConfig.block_bytes"),
            ({"buffer_bytes": -1}, "FrameworkConfig.buffer_bytes"),
            ({"shared_tree_rebuild_period": 0},
             "FrameworkConfig.shared_tree_rebuild_period"),
            ({"balancing_threshold": 1.0},
             "FrameworkConfig.balancing_threshold"),
            ({"dump_period": 0}, "FrameworkConfig.dump_period"),
            ({"num_subfiles": 0}, "FrameworkConfig.num_subfiles"),
            ({"overrun_deadline_frac": -0.1},
             "FrameworkConfig.overrun_deadline_frac"),
        ],
    )
    def test_bad_field_named_in_error(self, kwargs, field):
        with pytest.raises(ValueError, match=field.replace(".", r"\.")):
            FrameworkConfig(**kwargs)

    def test_unknown_scheduler_lists_available(self):
        with pytest.raises(ValueError, match="ExtJohnson"):
            FrameworkConfig(scheduler="NoSuchAlgorithm")

    def test_defaults_valid(self):
        FrameworkConfig()
