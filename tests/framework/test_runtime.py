"""Tests for the per-process runtime pipeline."""

import dataclasses

import pytest

from repro.apps import NyxModel
from repro.core import IoTaskRef
from repro.framework import (
    FrameworkConfig,
    ProcessRuntime,
    async_io_config,
    baseline_config,
    ours_config,
)
from repro.simulator import ZERO_NOISE


def _runtime(config=None, rank=0, **app_kwargs):
    app = NyxModel(seed=3, **app_kwargs)
    return ProcessRuntime(
        rank=rank,
        app=app,
        config=config or ours_config(),
        node_size=4,
        noise=ZERO_NOISE,
    )


class TestConfig:
    def test_defaults_are_paper_defaults(self):
        cfg = FrameworkConfig()
        assert cfg.scheduler == "ExtJohnson+BF"
        assert cfg.block_bytes == 8 * 2**20
        assert cfg.buffer_bytes == 20 * 2**20
        assert cfg.use_shared_tree
        assert cfg.use_balancing

    def test_validation(self):
        with pytest.raises(ValueError):
            FrameworkConfig(block_bytes=0)
        with pytest.raises(ValueError):
            FrameworkConfig(buffer_bytes=-1)
        with pytest.raises(ValueError):
            FrameworkConfig(dump_period=0)

    def test_baseline_config_shape(self):
        cfg = baseline_config()
        assert not cfg.use_compression
        assert not cfg.overlap_with_computation
        assert not cfg.async_background

    def test_async_config_shape(self):
        cfg = async_io_config()
        assert not cfg.use_compression
        assert cfg.overlap_with_computation
        assert cfg.async_background

    def test_overrides(self):
        cfg = ours_config(block_bytes=2**20)
        assert cfg.block_bytes == 2**20


class TestPlanning:
    def test_blocks_per_field_matches_target(self):
        rt = _runtime()  # 256^3 float64 = 128 MiB per field
        assert rt.blocks_per_field() == 16  # 8 MiB blocks

    def test_no_compression_uses_whole_fields(self):
        rt = _runtime(config=baseline_config())
        assert rt.blocks_per_field() == 1

    def test_plan_covers_all_fields(self):
        rt = _runtime()
        plan = rt.plan_dump(1)
        fields = {b.field_name for b in plan.blocks}
        assert fields == {f.name for f in rt.app.fields}
        assert len(plan.blocks) == 9 * 16

    def test_predicted_sizes_use_base_ratio_without_history(self):
        rt = _runtime()
        plan = rt.plan_dump(1)
        block = plan.blocks[0]
        expected = block.raw_bytes / rt.app.fields[0].base_ratio
        assert block.predicted_bytes == pytest.approx(expected, rel=0.01)

    def test_predictions_track_history_after_dump(self):
        rt = _runtime()
        rt.observe_iteration(rt.app.iteration_profile(0))
        plan = rt.plan_dump(1)
        rt.build_jobs(plan)
        outcome = rt.execute_dump(plan, 1)
        plan2 = rt.plan_dump(2)
        # Second plan's ratios must be the first dump's actual ratios.
        b = plan2.blocks[0]
        actual = float(outcome.actual_ratios[b.field_name][b.block_index])
        assert b.predicted_ratio == pytest.approx(actual)

    def test_buffered_io_cheaper_than_unbuffered(self):
        buffered = _runtime(config=ours_config())
        unbuffered = _runtime(config=ours_config(buffer_bytes=0))
        pb = buffered.plan_dump(1).blocks[0]
        pu = unbuffered.plan_dump(1).blocks[0]
        assert pb.predicted_io_s < pu.predicted_io_s

    def test_shared_tree_speeds_compression(self):
        with_tree = _runtime(config=ours_config())
        without = _runtime(config=ours_config(use_shared_tree=False))
        tb = with_tree.plan_dump(1).blocks[0]
        tn = without.plan_dump(1).blocks[0]
        assert tb.predicted_compression_s < tn.predicted_compression_s


class TestJobsAndInstance:
    def test_instance_requires_history(self):
        rt = _runtime()
        plan = rt.plan_dump(1)
        rt.build_jobs(plan)
        with pytest.raises(LookupError):
            rt.make_instance(plan)

    def test_instance_uses_previous_profile(self):
        rt = _runtime()
        profile = rt.app.iteration_profile(0)
        rt.observe_iteration(profile)
        plan = rt.plan_dump(1)
        rt.build_jobs(plan)
        inst = rt.make_instance(plan)
        assert inst.length == pytest.approx(profile.length)
        assert len(inst.main_obstacles) == len(profile.main_obstacles)

    def test_baseline_blocks_both_threads(self):
        rt = _runtime(config=baseline_config())
        rt.observe_iteration(rt.app.iteration_profile(0))
        plan = rt.plan_dump(1)
        rt.build_jobs(plan)
        inst = rt.make_instance(plan)
        assert len(inst.main_obstacles) == 1
        assert inst.main_obstacles[0].duration == pytest.approx(inst.length)
        assert len(inst.background_obstacles) == 1

    def test_moved_out_zeroes_io(self):
        rt = _runtime()
        plan = rt.plan_dump(1)
        refs = plan.io_task_refs(0)
        kept = refs[1:]
        rt.apply_balancing(plan, kept, [])
        jobs = rt.build_jobs(plan)
        assert jobs[0].io_time == 0.0
        assert jobs[1].io_time > 0.0

    def test_moved_in_appends_pseudo_jobs(self):
        rt = _runtime()
        plan = rt.plan_dump(1)
        moved = [IoTaskRef(owner=2, job_index=5, duration=0.3)]
        rt.apply_balancing(plan, plan.io_task_refs(0), moved)
        jobs = rt.build_jobs(plan)
        assert len(jobs) == len(plan.blocks) + 1
        pseudo = jobs[-1]
        assert pseudo.compression_time == 0.0
        assert pseudo.io_time == pytest.approx(0.3)
        assert pseudo.io_release > 0.0  # donor prefix-sum release


class TestExecution:
    def test_zero_noise_execution_valid(self):
        rt = _runtime()
        rt.observe_iteration(rt.app.iteration_profile(0))
        plan = rt.plan_dump(1)
        rt.build_jobs(plan)
        outcome = rt.execute_dump(plan, 1)
        assert outcome.execution.overhead >= 0.0
        assert len(outcome.actual_sizes) == len(plan.blocks)

    def test_ours_beats_baseline_per_process(self):
        results = {}
        for name, cfg in (
            ("ours", ours_config()),
            ("baseline", baseline_config()),
        ):
            rt = _runtime(config=cfg)
            rt.observe_iteration(rt.app.iteration_profile(0))
            plan = rt.plan_dump(1)
            rt.build_jobs(plan)
            results[name] = rt.execute_dump(plan, 1).relative_overhead
        assert results["ours"] < results["baseline"] / 2

    def test_schedule_is_valid(self):
        rt = _runtime()
        rt.observe_iteration(rt.app.iteration_profile(0))
        plan = rt.plan_dump(1)
        rt.build_jobs(plan)
        outcome = rt.execute_dump(plan, 1)
        outcome.schedule.validate()
