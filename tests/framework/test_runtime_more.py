"""Additional runtime tests: balancing bookkeeping and plan integrity."""

import pytest

from repro.apps import NyxModel, WarpXModel
from repro.core import IoTaskRef
from repro.framework import ProcessRuntime, ours_config
from repro.simulator import ZERO_NOISE


def _runtime(app=None, config=None, rank=0):
    app = app or NyxModel(seed=71)
    return ProcessRuntime(
        rank=rank,
        app=app,
        config=config or ours_config(),
        node_size=4,
        noise=ZERO_NOISE,
    )


class TestPlanIntegrity:
    def test_job_indices_sequential_field_major(self):
        rt = _runtime()
        plan = rt.plan_dump(1)
        nb = rt.blocks_per_field()
        for i, block in enumerate(plan.blocks):
            assert block.job_index == i
            assert block.block_index == i % nb
        field_order = [b.field_name for b in plan.blocks[::nb]]
        assert field_order == [f.name for f in rt.app.fields]

    def test_raw_bytes_cover_partition(self):
        rt = _runtime()
        plan = rt.plan_dump(1)
        per_field = {}
        for block in plan.blocks:
            per_field.setdefault(block.field_name, 0)
            per_field[block.field_name] += block.raw_bytes
        for total in per_field.values():
            assert total == rt.app.partition_nbytes()

    def test_io_refs_match_blocks(self):
        rt = _runtime()
        plan = rt.plan_dump(1)
        refs = plan.io_task_refs(rank=3)
        assert len(refs) == len(plan.blocks)
        assert all(r.owner == 3 for r in refs)
        assert [r.job_index for r in refs] == [
            b.job_index for b in plan.blocks
        ]

    def test_warpx_plan_uses_its_fields(self):
        rt = _runtime(app=WarpXModel(seed=71))
        plan = rt.plan_dump(1)
        names = {b.field_name for b in plan.blocks}
        assert "Ex" in names and "rho" in names


class TestBalancingBookkeeping:
    def test_kept_everything_means_no_moves(self):
        rt = _runtime()
        plan = rt.plan_dump(1)
        rt.apply_balancing(plan, plan.io_task_refs(0), [])
        assert plan.moved_out == set()
        assert plan.moved_in == []

    def test_moved_out_complements_kept(self):
        rt = _runtime()
        plan = rt.plan_dump(1)
        refs = plan.io_task_refs(0)
        kept = refs[::2]
        rt.apply_balancing(plan, kept, [])
        expected_out = {r.job_index for r in refs[1::2]}
        assert plan.moved_out == expected_out

    def test_foreign_kept_refs_ignored(self):
        rt = _runtime()
        plan = rt.plan_dump(1)
        foreign = [IoTaskRef(owner=9, job_index=0, duration=1.0)]
        rt.apply_balancing(plan, plan.io_task_refs(0) + foreign, [])
        assert plan.moved_out == set()

    def test_execution_with_moves_still_valid(self):
        rt = _runtime()
        rt.observe_iteration(rt.app.iteration_profile(0))
        plan = rt.plan_dump(1)
        refs = plan.io_task_refs(0)
        rt.apply_balancing(
            plan,
            refs[:-2],
            [IoTaskRef(owner=1, job_index=4, duration=0.02)],
        )
        rt.build_jobs(plan)
        outcome = rt.execute_dump(plan, 1, moved_in_actual_s=[0.02])
        outcome.schedule.validate()
        # Moved-out jobs executed with zero I/O locally.
        for job_index in plan.moved_out:
            assert outcome.execution.io[job_index].duration == 0.0
