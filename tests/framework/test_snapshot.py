"""Tests for the high-level snapshot save/load API."""

import numpy as np
import pytest

from repro.compression import SZCompressor, build_codebook, max_abs_error
from repro.framework import load_snapshot, save_snapshot


def _fields(rng):
    return {
        "rho": np.cumsum(rng.normal(size=(24, 24, 24)), axis=0),
        "temperature": np.cumsum(rng.normal(size=(20, 16)), axis=0),
        "energy": np.cumsum(rng.normal(size=(500,))),
    }


class TestSaveLoad:
    def test_round_trip_respects_bounds(self, tmp_path, rng):
        fields = _fields(rng)
        path = tmp_path / "snap.rpio"
        save_snapshot(path, fields, error_bounds=0.01, block_bytes=32_768)
        out = load_snapshot(path)
        assert set(out) == set(fields)
        for name in fields:
            assert out[name].shape == fields[name].shape
            assert max_abs_error(fields[name], out[name]) <= 0.01 * (
                1 + 1e-9
            )

    def test_per_field_bounds(self, tmp_path, rng):
        fields = _fields(rng)
        bounds = {"rho": 0.5, "temperature": 0.001, "energy": 0.1}
        path = tmp_path / "snap.rpio"
        save_snapshot(path, fields, error_bounds=bounds)
        out = load_snapshot(path)
        for name, bound in bounds.items():
            assert max_abs_error(fields[name], out[name]) <= bound * (
                1 + 1e-9
            )

    def test_stats(self, tmp_path, rng):
        fields = _fields(rng)
        stats = save_snapshot(
            tmp_path / "s.rpio", fields, error_bounds=0.01
        )
        assert stats.raw_bytes == sum(f.nbytes for f in fields.values())
        assert stats.compressed_bytes < stats.raw_bytes
        assert stats.compression_ratio > 1.0
        assert stats.num_blocks >= len(fields)

    def test_shared_codebook_embedded(self, tmp_path, rng):
        fields = {"rho": np.cumsum(rng.normal(size=(16, 16, 16)), axis=0)}
        compressor = SZCompressor()
        hist = compressor.histogram(fields["rho"], 0.01)
        shared = build_codebook(hist, force_symbols=(compressor.sentinel,))
        path = tmp_path / "s.rpio"
        save_snapshot(
            path, fields, error_bounds=0.01, shared_codebook=shared
        )
        # Loading needs no writer state: codebook travels in the file.
        out = load_snapshot(path)
        assert max_abs_error(fields["rho"], out["rho"]) <= 0.01 * (
            1 + 1e-9
        )

    def test_sync_io_path(self, tmp_path, rng):
        fields = _fields(rng)
        path = tmp_path / "s.rpio"
        save_snapshot(path, fields, error_bounds=0.01, async_io=False)
        out = load_snapshot(path)
        assert set(out) == set(fields)

    def test_fine_blocks_reassemble(self, tmp_path, rng):
        fields = {"rho": np.cumsum(rng.normal(size=(32, 8, 8)), axis=0)}
        path = tmp_path / "s.rpio"
        stats = save_snapshot(
            path, fields, error_bounds=0.05, block_bytes=2048
        )
        assert stats.num_blocks >= 8
        out = load_snapshot(path, verify_bounds=True)
        assert max_abs_error(fields["rho"], out["rho"]) <= 0.05 * (
            1 + 1e-9
        )

    def test_float32_round_trip(self, tmp_path, rng):
        fields = {
            "v": np.cumsum(
                rng.normal(size=(16, 16)).astype(np.float32), axis=0
            )
        }
        path = tmp_path / "s.rpio"
        save_snapshot(path, fields, error_bounds=0.01)
        out = load_snapshot(path)
        assert out["v"].dtype == np.float32


class TestValidation:
    def test_empty_fields_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="no fields"):
            save_snapshot(tmp_path / "s", {}, error_bounds=0.1)

    def test_missing_bound_rejected(self, tmp_path, rng):
        with pytest.raises(ValueError, match="missing error bounds"):
            save_snapshot(
                tmp_path / "s",
                {"a": rng.normal(size=4)},
                error_bounds={"b": 0.1},
            )

    def test_nonpositive_bound_rejected(self, tmp_path, rng):
        with pytest.raises(ValueError, match="positive"):
            save_snapshot(
                tmp_path / "s",
                {"a": rng.normal(size=4)},
                error_bounds=0.0,
            )

    def test_integer_field_rejected(self, tmp_path):
        with pytest.raises(TypeError):
            save_snapshot(
                tmp_path / "s",
                {"a": np.arange(10)},
                error_bounds=0.1,
            )

    def test_load_non_snapshot_rejected(self, tmp_path, rng):
        from repro.io import SharedFileWriter

        path = tmp_path / "plain.rpio"
        with SharedFileWriter(path) as writer:
            writer.write_unreserved("something", b"data")
        with pytest.raises(ValueError, match="manifest"):
            load_snapshot(path)


class TestSubfiledLayout:
    def test_subfiled_round_trip(self, tmp_path, rng):
        fields = _fields(rng)
        target = tmp_path / "snapdir"
        save_snapshot(
            target,
            fields,
            error_bounds=0.01,
            block_bytes=32_768,
            layout="subfiled",
            num_subfiles=3,
        )
        out = load_snapshot(target)
        for name in fields:
            assert max_abs_error(fields[name], out[name]) <= 0.01 * (
                1 + 1e-9
            )

    def test_subfiled_creates_index_and_subfiles(self, tmp_path, rng):
        import os

        target = tmp_path / "snapdir"
        save_snapshot(
            target,
            {"a": np.cumsum(rng.normal(size=(8, 8)))},
            error_bounds=0.1,
            layout="subfiled",
            num_subfiles=2,
        )
        names = sorted(os.listdir(target))
        assert "index.json" in names
        assert sum(n.startswith("subfile_") for n in names) == 2

    def test_unknown_layout_rejected(self, tmp_path, rng):
        with pytest.raises(ValueError, match="unknown layout"):
            save_snapshot(
                tmp_path / "s",
                {"a": rng.normal(size=4)},
                error_bounds=0.1,
                layout="striped",
            )

    def test_subfiled_with_shared_codebook(self, tmp_path, rng):
        field = np.cumsum(rng.normal(size=(16, 16, 16)), axis=0)
        compressor = SZCompressor()
        hist = compressor.histogram(field, 0.01)
        shared = build_codebook(hist, force_symbols=(compressor.sentinel,))
        target = tmp_path / "snapdir"
        save_snapshot(
            target,
            {"rho": field},
            error_bounds=0.01,
            layout="subfiled",
            shared_codebook=shared,
        )
        out = load_snapshot(target)
        assert max_abs_error(field, out["rho"]) <= 0.01 * (1 + 1e-9)
