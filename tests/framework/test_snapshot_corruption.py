"""Property tests: any single flipped bit in a snapshot is detected.

Every region of a ``.rpio`` container — header magic, footer, manifest,
shared codebook, block payloads — is covered by a checksum, so a random
single-bit flip anywhere must surface as a :class:`ValueError` naming
the damaged region (and, for payloads, the field and block index).
"""

import struct

import numpy as np
import pytest

from repro.compression import SZCompressor, build_codebook
from repro.framework import load_snapshot, save_snapshot
from repro.io import SharedFileReader

FLIPS_PER_REGION = 8


def _write_snapshot(path, rng, shared_codebook=False):
    fields = {
        "rho": np.cumsum(rng.normal(size=(16, 16, 16)), axis=0),
        "energy": np.cumsum(rng.normal(size=(600,))),
    }
    kwargs = {}
    if shared_codebook:
        compressor = SZCompressor()
        hist = compressor.histogram(fields["rho"], 0.01)
        kwargs["shared_codebook"] = build_codebook(
            hist, force_symbols=(compressor.sentinel,)
        )
    save_snapshot(
        path, fields, error_bounds=0.01, block_bytes=16_384, **kwargs
    )
    return fields


def _entry_span(path, name):
    with SharedFileReader(path) as reader:
        entry = reader.entries[name]
        return entry.offset, entry.nbytes


def _flip_bit(path, offset, bit):
    blob = bytearray(path.read_bytes())
    blob[offset] ^= 1 << bit
    path.write_bytes(bytes(blob))


class TestHeaderAndFooter:
    def test_header_magic_flip_rejected(self, tmp_path, rng):
        path = tmp_path / "snap.rpio"
        _write_snapshot(path, rng)
        for _ in range(FLIPS_PER_REGION):
            pristine = path.read_bytes()
            _flip_bit(path, int(rng.integers(0, 8)), int(rng.integers(0, 8)))
            with pytest.raises(ValueError, match="not a shared container"):
                load_snapshot(path)
            path.write_bytes(pristine)

    def test_footer_flip_rejected(self, tmp_path, rng):
        path = tmp_path / "snap.rpio"
        _write_snapshot(path, rng)
        pristine = path.read_bytes()
        size = len(pristine)
        tail_size = struct.calcsize("<QI8s")
        footer_len = struct.unpack(
            "<QI8s", pristine[size - tail_size :]
        )[0]
        footer_start = size - tail_size - footer_len
        for _ in range(FLIPS_PER_REGION):
            offset = int(rng.integers(footer_start, size - tail_size))
            _flip_bit(path, offset, int(rng.integers(0, 8)))
            with pytest.raises(
                ValueError, match="footer (failed its checksum|is not valid)"
            ):
                load_snapshot(path)
            path.write_bytes(pristine)


class TestManifestAndCodebook:
    def test_manifest_flip_rejected(self, tmp_path, rng):
        path = tmp_path / "snap.rpio"
        _write_snapshot(path, rng)
        start, nbytes = _entry_span(path, "__manifest__")
        pristine = path.read_bytes()
        for _ in range(FLIPS_PER_REGION):
            offset = int(rng.integers(start, start + nbytes))
            _flip_bit(path, offset, int(rng.integers(0, 8)))
            with pytest.raises(ValueError, match="manifest is corrupt"):
                load_snapshot(path)
            path.write_bytes(pristine)

    def test_codebook_flip_rejected(self, tmp_path, rng):
        path = tmp_path / "snap.rpio"
        _write_snapshot(path, rng, shared_codebook=True)
        start, nbytes = _entry_span(path, "__codebook__")
        pristine = path.read_bytes()
        for _ in range(FLIPS_PER_REGION):
            offset = int(rng.integers(start, start + nbytes))
            _flip_bit(path, offset, int(rng.integers(0, 8)))
            with pytest.raises(
                ValueError, match="shared codebook is corrupt"
            ):
                load_snapshot(path)
            path.write_bytes(pristine)


class TestBlockPayloads:
    def test_flip_names_field_and_block_index(self, tmp_path, rng):
        """The acceptance criterion: any single-bit payload corruption is
        reported with the damaged field's name and block index."""
        path = tmp_path / "snap.rpio"
        _write_snapshot(path, rng)
        with SharedFileReader(path) as reader:
            blocks = {
                name: (entry.offset, entry.nbytes)
                for name, entry in reader.entries.items()
                if not name.startswith("__")
            }
        assert len(blocks) >= 2
        pristine = path.read_bytes()
        for name, (start, nbytes) in sorted(blocks.items()):
            field, index = name.rsplit("/", 1)
            for _ in range(FLIPS_PER_REGION):
                offset = int(rng.integers(start, start + nbytes))
                _flip_bit(path, offset, int(rng.integers(0, 8)))
                with pytest.raises(ValueError) as excinfo:
                    load_snapshot(path)
                message = str(excinfo.value)
                assert f"field {field!r} block {index}" in message
                assert str(start) in message  # names the offset too
                path.write_bytes(pristine)

    def test_truncated_container_rejected(self, tmp_path, rng):
        path = tmp_path / "snap.rpio"
        _write_snapshot(path, rng)
        blob = path.read_bytes()
        for keep in (4, len(blob) // 2, len(blob) - 3):
            path.write_bytes(blob[:keep])
            with pytest.raises(ValueError):
                load_snapshot(path)
        path.write_bytes(blob)
        load_snapshot(path)  # restored file loads again

    def test_clean_snapshot_still_loads(self, tmp_path, rng):
        """Sanity: no false positives on an undamaged file."""
        path = tmp_path / "snap.rpio"
        fields = _write_snapshot(path, rng)
        out = load_snapshot(path)
        assert set(out) == set(fields)
