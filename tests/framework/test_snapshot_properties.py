"""Property-based tests for the snapshot API."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.compression import max_abs_error
from repro.framework import load_snapshot, save_snapshot


@st.composite
def field_sets(draw):
    num_fields = draw(st.integers(min_value=1, max_value=3))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    rng = np.random.default_rng(seed)
    fields = {}
    for i in range(num_fields):
        ndim = draw(st.integers(min_value=1, max_value=3))
        shape = tuple(
            draw(st.integers(min_value=1, max_value=12))
            for _ in range(ndim)
        )
        dtype = draw(st.sampled_from([np.float64, np.float32]))
        data = np.cumsum(
            rng.normal(size=shape).astype(dtype), axis=0
        )
        fields[f"field{i}"] = data
    bound = draw(
        st.floats(min_value=1e-4, max_value=1.0, allow_nan=False)
    )
    return fields, bound


@given(spec=field_sets(), layout=st.sampled_from(["shared", "subfiled"]))
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
def test_snapshot_round_trip_property(spec, layout, tmp_path_factory):
    fields, bound = spec
    target = tmp_path_factory.mktemp("snap") / "snapshot"
    save_snapshot(
        target,
        fields,
        error_bounds=bound,
        block_bytes=1024,
        layout=layout,
        num_subfiles=2,
    )
    restored = load_snapshot(target)
    assert set(restored) == set(fields)
    for name, original in fields.items():
        assert restored[name].shape == original.shape
        assert restored[name].dtype == original.dtype
        tolerance = bound * (1 + 1e-9)
        if original.dtype == np.float32:
            tolerance += float(np.abs(original).max()) * 1e-6
        assert max_abs_error(original, restored[name]) <= tolerance
