"""Tests for the campaign sweep utility."""

import pytest

from repro.apps import NyxModel
from repro.framework import (
    baseline_config,
    ours_config,
    sweep_campaigns,
)
from repro.simulator import ClusterSpec


@pytest.fixture(scope="module")
def sweep():
    variants = {
        "seed-a": NyxModel(seed=61),
        "seed-b": NyxModel(seed=62),
    }
    solutions = {
        "baseline": baseline_config(),
        "ours": ours_config(),
    }
    return sweep_campaigns(
        variants,
        solutions,
        ClusterSpec(num_nodes=1, processes_per_node=2),
        iterations=3,
        seed=61,
    )


class TestSweep:
    def test_full_cross_product(self, sweep):
        assert len(sweep.points) == 4
        assert sweep.variants() == ["seed-a", "seed-b"]
        assert sweep.solutions() == ["baseline", "ours"]

    def test_overhead_lookup(self, sweep):
        assert sweep.overhead("seed-a", "ours") < sweep.overhead(
            "seed-a", "baseline"
        )

    def test_missing_cell_raises(self, sweep):
        with pytest.raises(KeyError):
            sweep.overhead("seed-a", "nope")

    def test_table_renders(self, sweep):
        table = sweep.to_table()
        assert "variant" in table
        assert "seed-b" in table
        assert "%" in table

    def test_chart_renders(self, sweep):
        chart = sweep.to_chart()
        assert "o=baseline" in chart
        assert "x=ours" in chart

    def test_chart_with_numeric_x(self, sweep):
        chart = sweep.to_chart(x_of=lambda v: 1.0 if v == "seed-a" else 2.0)
        assert "relative overhead" in chart


class TestSweepRegeneratesMiniScaling:
    def test_mini_weak_scaling_shape(self):
        """A 2-point Figure 11 through the public sweep API."""
        app = NyxModel(seed=63)
        small = sweep_campaigns(
            {"8 GPUs": app},
            {"baseline": baseline_config(), "ours": ours_config()},
            ClusterSpec(num_nodes=2, processes_per_node=4),
            iterations=3,
            seed=63,
        )
        large = sweep_campaigns(
            {"32 GPUs": app},
            {"baseline": baseline_config(), "ours": ours_config()},
            ClusterSpec(num_nodes=8, processes_per_node=4),
            iterations=3,
            seed=63,
        )
        assert large.overhead("32 GPUs", "baseline") > small.overhead(
            "8 GPUs", "baseline"
        )
        ours_growth = abs(
            large.overhead("32 GPUs", "ours")
            - small.overhead("8 GPUs", "ours")
        )
        base_growth = large.overhead("32 GPUs", "baseline") - small.overhead(
            "8 GPUs", "baseline"
        )
        assert ours_growth < base_growth / 3
