"""Tests for the text line-chart renderer."""

import pytest

from repro.framework import line_chart


class TestLineChart:
    def test_single_series(self):
        chart = line_chart({"a": [(0, 0), (1, 1), (2, 4)]})
        assert "o=a" in chart
        assert "o" in chart.splitlines()[0] or any(
            "o" in line for line in chart.splitlines()
        )

    def test_y_extremes_labelled(self):
        chart = line_chart({"a": [(0, 0.5), (1, 2.5)]})
        assert "2.5" in chart
        assert "0.5" in chart

    def test_x_extremes_labelled(self):
        chart = line_chart({"a": [(3, 1), (17, 2)]})
        assert "3" in chart
        assert "17" in chart

    def test_multiple_series_distinct_glyphs(self):
        chart = line_chart(
            {"a": [(0, 1), (1, 2)], "b": [(0, 2), (1, 1)]}
        )
        assert "o=a" in chart
        assert "x=b" in chart

    def test_axis_labels(self):
        chart = line_chart(
            {"a": [(0, 1)]}, x_label="time", y_label="overhead"
        )
        assert "time" in chart
        assert chart.startswith("overhead")

    def test_constant_series_no_div_zero(self):
        chart = line_chart({"a": [(0, 5), (1, 5), (2, 5)]})
        assert "5" in chart

    def test_single_point(self):
        chart = line_chart({"a": [(1, 1)]})
        assert "o=a" in chart

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            line_chart({})
        with pytest.raises(ValueError):
            line_chart({"a": []})

    def test_dimensions_respected(self):
        chart = line_chart(
            {"a": [(0, 0), (10, 10)]}, width=30, height=8
        )
        plot_rows = [l for l in chart.splitlines() if "|" in l]
        assert len(plot_rows) == 8
        for row in plot_rows:
            assert len(row.split("|", 1)[1]) <= 30
