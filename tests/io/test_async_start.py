"""AsyncWriter startup semantics: lazy, idempotent, safe to skip."""

import threading

from repro.io import AsyncWriter, SharedFileReader, SharedFileWriter


class TestIdempotentStart:
    def test_constructor_starts_no_thread(self, tmp_path):
        before = threading.active_count()
        writer = SharedFileWriter(tmp_path / "c.rpio")
        async_writer = AsyncWriter(writer)
        assert threading.active_count() == before
        async_writer.close()
        writer.abort()

    def test_start_is_idempotent(self, tmp_path):
        writer = SharedFileWriter(tmp_path / "c.rpio")
        async_writer = AsyncWriter(writer)
        async_writer.start()
        thread = async_writer._thread
        for _ in range(5):
            async_writer.start()  # must not try to start it twice
        assert async_writer._thread is thread
        assert thread.is_alive()
        async_writer.close()
        writer.abort()

    def test_submit_and_drain_start_lazily(self, tmp_path):
        path = tmp_path / "c.rpio"
        writer = SharedFileWriter(path)
        async_writer = AsyncWriter(writer)
        writer.reserve("x", 3)
        job = async_writer.submit("x", b"abc")
        async_writer.drain(timeout=10.0)
        assert job.wait(0.0)
        async_writer.close(timeout=10.0)
        writer.close()
        with SharedFileReader(path) as reader:
            assert reader.read("x") == b"abc"

    def test_close_unstarted_writer_is_clean(self, tmp_path):
        writer = SharedFileWriter(tmp_path / "c.rpio")
        async_writer = AsyncWriter(writer)
        async_writer.close(timeout=1.0)  # no thread ever ran
        async_writer.close(timeout=1.0)  # and close stays idempotent
        writer.abort()
