"""Async-writer stress: many jobs, mixed overflow, interleaved waits."""

import numpy as np
import pytest

from repro.io import AsyncWriter, SharedFileReader, SharedFileWriter


class TestAsyncStress:
    def test_hundreds_of_jobs_land_exactly(self, tmp_path, rng):
        path = tmp_path / "stress.rpio"
        payloads = {
            f"d{i}": rng.integers(0, 256, size=int(rng.integers(1, 400)))
            .astype(np.uint8)
            .tobytes()
            for i in range(300)
        }
        with SharedFileWriter(path) as writer:
            for name, payload in payloads.items():
                writer.reserve(name, len(payload))
            with AsyncWriter(writer) as background:
                jobs = [
                    background.submit(name, payload)
                    for name, payload in payloads.items()
                ]
                background.drain()
            assert all(j.fit_reservation for j in jobs)
        with SharedFileReader(path) as reader:
            for name, payload in payloads.items():
                assert reader.read(name) == payload

    def test_mixed_overflow_and_fit(self, tmp_path, rng):
        path = tmp_path / "mixed.rpio"
        with SharedFileWriter(path) as writer:
            for i in range(50):
                writer.reserve(f"d{i}", 16)
            with AsyncWriter(writer) as background:
                jobs = []
                for i in range(50):
                    size = 8 if i % 2 == 0 else 64  # odd ones overflow
                    jobs.append(
                        background.submit(f"d{i}", bytes([i % 256]) * size)
                    )
                background.drain()
        fits = [j.fit_reservation for j in jobs]
        assert fits == [i % 2 == 0 for i in range(50)]
        with SharedFileReader(path) as reader:
            for i in range(50):
                size = 8 if i % 2 == 0 else 64
                assert reader.read(f"d{i}") == bytes([i % 256]) * size
                assert reader.entries[f"d{i}"].overflowed == (i % 2 == 1)

    def test_interleaved_submit_and_wait(self, tmp_path):
        path = tmp_path / "interleave.rpio"
        with SharedFileWriter(path) as writer:
            for i in range(20):
                writer.reserve(f"d{i}", 4)
            with AsyncWriter(writer) as background:
                for i in range(20):
                    job = background.submit(f"d{i}", b"abcd")
                    if i % 5 == 0:
                        assert job.wait(timeout=10.0)
                background.drain()
        with SharedFileReader(path) as reader:
            assert len(reader.names()) == 20

    def test_drain_is_reentrant(self, tmp_path):
        with SharedFileWriter(tmp_path / "d.rpio") as writer:
            writer.reserve("a", 4)
            with AsyncWriter(writer) as background:
                background.drain()  # nothing queued
                background.submit("a", b"data")
                background.drain()
                background.drain()  # idempotent

    def test_close_waits_for_queued_work(self, tmp_path):
        path = tmp_path / "closing.rpio"
        writer = SharedFileWriter(path)
        for i in range(30):
            writer.reserve(f"d{i}", 8)
        background = AsyncWriter(writer)
        jobs = [
            background.submit(f"d{i}", b"12345678") for i in range(30)
        ]
        background.close()  # must flush the queue before stopping
        assert all(j.fit_reservation for j in jobs)
        writer.close()
        with SharedFileReader(path) as reader:
            assert len(reader.names()) == 30
