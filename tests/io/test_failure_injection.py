"""Failure injection: corrupted containers, truncation, bad payloads."""

import os

import numpy as np
import pytest

from repro.compression import CompressedBlock, SZCompressor
from repro.io import SharedFileReader, SharedFileWriter


def _container(tmp_path, datasets):
    path = tmp_path / "dump.rpio"
    with SharedFileWriter(path) as writer:
        for name, payload in datasets:
            writer.reserve(name, len(payload))
            writer.write(name, payload)
    return path


class TestContainerCorruption:
    def test_truncated_file_rejected(self, tmp_path):
        path = _container(tmp_path, [("a", b"hello world")])
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(Exception):
            SharedFileReader(path)

    def test_clobbered_footer_magic_rejected(self, tmp_path):
        path = _container(tmp_path, [("a", b"hello")])
        data = bytearray(path.read_bytes())
        data[-4:] = b"XXXX"
        path.write_bytes(bytes(data))
        with pytest.raises(ValueError):
            SharedFileReader(path)

    def test_clobbered_head_magic_rejected(self, tmp_path):
        path = _container(tmp_path, [("a", b"hello")])
        data = bytearray(path.read_bytes())
        data[:4] = b"XXXX"
        path.write_bytes(bytes(data))
        with pytest.raises(ValueError):
            SharedFileReader(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty"
        path.write_bytes(b"")
        with pytest.raises(ValueError):
            SharedFileReader(path)

    def test_footer_length_overflow_rejected(self, tmp_path):
        import struct

        path = _container(tmp_path, [("a", b"hello")])
        data = bytearray(path.read_bytes())
        # Declare an absurd footer length.
        tail = struct.pack("<Q8s", 2**40, b"RPIO0001")
        data[-len(tail):] = tail
        path.write_bytes(bytes(data))
        with pytest.raises(Exception):
            SharedFileReader(path)


class TestBlockCorruption:
    @pytest.fixture
    def block_bytes(self, rng):
        field = np.cumsum(rng.normal(size=(12, 12, 12)), axis=0)
        return SZCompressor().compress(field, 0.01).to_bytes()

    def test_bad_magic_rejected(self, block_bytes):
        corrupted = b"XXXX" + block_bytes[4:]
        with pytest.raises(ValueError, match="not a compressed block"):
            CompressedBlock.from_bytes(corrupted)

    def test_payload_bitflip_detected_or_bounded(self, block_bytes, rng):
        # Flipping a byte inside the zlib payload must raise (zlib CRC /
        # stream error or Huffman stream error), never return silently
        # wrong *shape* data.
        block = CompressedBlock.from_bytes(block_bytes)
        corrupted = bytearray(block_bytes)
        corrupted[-10] ^= 0xFF
        try:
            bad = CompressedBlock.from_bytes(bytes(corrupted))
            result = SZCompressor().decompress(bad)
        except Exception:
            return  # detected — good
        assert result.shape == block.shape  # at worst wrong values

    def test_truncated_block_rejected(self, block_bytes):
        with pytest.raises(Exception):
            blk = CompressedBlock.from_bytes(block_bytes[: len(block_bytes) // 3])
            SZCompressor().decompress(blk)


class TestWriterRobustness:
    def test_overflow_accounting_stable_under_many_overflows(self, tmp_path):
        path = tmp_path / "dump.rpio"
        with SharedFileWriter(path) as writer:
            for i in range(20):
                writer.reserve(f"d{i}", 1)
            for i in range(20):
                fit = writer.write(f"d{i}", b"bigger than one byte")
                assert not fit
            assert writer.overflow_bytes == 20 * len(
                b"bigger than one byte"
            )
        with SharedFileReader(path) as reader:
            for i in range(20):
                assert reader.read(f"d{i}") == b"bigger than one byte"

    def test_interleaved_reserve_write(self, tmp_path):
        path = tmp_path / "dump.rpio"
        with SharedFileWriter(path) as writer:
            writer.reserve("a", 4)
            writer.write("a", b"aaaa")
            writer.reserve("b", 4)
            writer.write("b", b"bbbb")
        with SharedFileReader(path) as reader:
            assert reader.read("a") == b"aaaa"
            assert reader.read("b") == b"bbbb"

    def test_zero_byte_dataset(self, tmp_path):
        path = tmp_path / "dump.rpio"
        with SharedFileWriter(path) as writer:
            writer.reserve("empty", 0)
            writer.write("empty", b"")
        with SharedFileReader(path) as reader:
            assert reader.read("empty") == b""


class TestChecksums:
    def test_crc_recorded_and_verified(self, tmp_path):
        path = _container(tmp_path, [("a", b"payload bytes")])
        with SharedFileReader(path) as reader:
            assert reader.entries["a"].crc32c is not None
            assert reader.read("a") == b"payload bytes"

    def test_bitflip_detected_by_checksum(self, tmp_path):
        path = _container(tmp_path, [("a", b"payload bytes here")])
        with SharedFileReader(path) as reader:
            offset = reader.entries["a"].offset
        data = bytearray(path.read_bytes())
        data[offset] ^= 0xFF
        path.write_bytes(bytes(data))
        with SharedFileReader(path) as reader:
            with pytest.raises(ValueError, match="checksum"):
                reader.read("a")
            # Unverified reads still return the (corrupt) bytes.
            assert len(reader.read("a", verify=False)) == len(
                b"payload bytes here"
            )

    def test_external_writes_have_no_crc(self, tmp_path):
        path = tmp_path / "dump.rpio"
        writer = SharedFileWriter(path)
        writer.reserve("ext", 8)
        # External writers target the in-progress temp file; the final
        # path only appears once close() publishes the container.
        fd = os.open(writer.data_path, os.O_WRONLY)
        try:
            os.pwrite(fd, b"external", 8)
        finally:
            os.close(fd)
        writer.commit_external("ext", 8)
        writer.close()
        with SharedFileReader(path) as reader:
            assert reader.entries["ext"].crc32c is None
            assert reader.read("ext") == b"external"  # verify is a no-op
