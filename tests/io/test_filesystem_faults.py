"""SimulatedFileSystem under fault injection: retries, totals, failure."""

import pytest

from repro.io import IoThroughputModel, SimulatedFileSystem
from repro.resilience import (
    BandwidthFault,
    FaultInjector,
    FaultPlan,
    RetryPolicy,
    WriteErrorFault,
    WriteFailedError,
)
from repro.telemetry import Tracer

_MODEL = IoThroughputModel(
    node_bandwidth_bytes_per_s=1e9, processes_per_node=1
)


def _fs(plan=None, seed=0, **kwargs):
    injector = FaultInjector(plan, seed=seed) if plan else None
    return (
        SimulatedFileSystem(_MODEL, injector=injector, **kwargs),
        injector,
    )


class TestRunningTotals:
    def test_totals_match_record_sums(self):
        fs, _ = _fs()
        for rank in range(3):
            for nbytes in (1000, 2_000_000, 0):
                fs.write(rank, nbytes)
        assert fs.total_bytes == sum(w.nbytes for w in fs.writes)
        assert fs.total_time == pytest.approx(
            sum(w.duration for w in fs.writes)
        )
        assert fs.mean_write_bytes == pytest.approx(
            fs.total_bytes / len(fs.writes)
        )
        assert fs.achieved_bandwidth() == pytest.approx(
            fs.total_bytes / fs.total_time
        )

    def test_reset_clears_totals(self):
        fs, _ = _fs()
        fs.write(0, 1_000_000)
        fs.reset()
        assert fs.total_bytes == 0
        assert fs.total_time == 0.0
        assert fs.mean_write_bytes == 0.0
        assert fs.achieved_bandwidth() == 0.0
        # And accumulation restarts cleanly.
        fs.write(0, 500)
        assert fs.total_bytes == 500

    def test_totals_include_retry_inflation(self):
        plan = FaultPlan(write_error=WriteErrorFault(probability=0.5))
        fs, _ = _fs(plan, seed=3)
        clean = _MODEL.write_time(1_000_000)
        for op in range(50):
            fs.write(0, 1_000_000)
        assert fs.total_time == pytest.approx(
            sum(w.duration for w in fs.writes)
        )
        assert fs.total_time > 50 * clean  # some attempts were retried
        assert any(w.attempts > 1 for w in fs.writes)


class TestRetries:
    def test_no_injector_single_attempt(self):
        fs, _ = _fs()
        fs.write(0, 1000)
        assert fs.writes[0].attempts == 1
        assert fs.writes[0].duration == pytest.approx(
            _MODEL.write_time(1000)
        )

    def test_retries_logged(self):
        plan = FaultPlan(write_error=WriteErrorFault(probability=0.6))
        fs, injector = _fs(plan, seed=1)
        for op in range(80):
            try:
                fs.write(0, 100_000)
            except WriteFailedError:
                pass
        log = injector.log
        assert log.retries > 0
        assert log.retry_successes > 0
        # Recovered writes show their attempt count in the record.
        assert any(w.attempts > 1 for w in fs.writes)

    def test_exhaustion_raises_with_context(self):
        plan = FaultPlan(write_error=WriteErrorFault(probability=1.0))
        fs, injector = _fs(
            plan, retry=RetryPolicy(max_attempts=3, jitter_frac=0.0)
        )
        with pytest.raises(WriteFailedError) as info:
            fs.write(2, 4096)
        assert info.value.rank == 2
        assert info.value.nbytes == 4096
        assert info.value.attempts == 3
        assert injector.log.write_failures == 1
        # Failed writes leave no record and no byte accounting.
        assert fs.writes == []
        assert fs.total_bytes == 0

    def test_deadline_cuts_retries_short(self):
        plan = FaultPlan(write_error=WriteErrorFault(probability=1.0))
        fs, _ = _fs(
            plan,
            retry=RetryPolicy(
                max_attempts=100, base_backoff_s=1.0, jitter_frac=0.0,
                deadline_s=2.5,
            ),
        )
        with pytest.raises(WriteFailedError) as info:
            fs.write(0, 1000)
        assert info.value.attempts < 100

    def test_deterministic_across_instances(self):
        plan = FaultPlan(
            write_error=WriteErrorFault(probability=0.5),
            bandwidth=BandwidthFault(probability=0.5, min_factor=0.1),
        )
        durations = []
        for _ in range(2):
            fs, _ = _fs(plan, seed=11)
            run = []
            for op in range(40):
                try:
                    run.append(fs.write(op % 4, 200_000))
                except WriteFailedError as exc:
                    run.append(("failed", exc.attempts))
            durations.append(run)
        assert durations[0] == durations[1]


class _FlakyWriter:
    """Duck-typed SharedFileWriter failing the first ``failures`` calls."""

    def __init__(self, failures):
        self.failures = failures
        self.calls = 0

    def write(self, name, payload):
        self.calls += 1
        if self.calls <= self.failures:
            raise OSError("transient")
        return True


class TestAsyncWriterRetry:
    def test_transient_failures_recovered(self):
        from repro.io import AsyncWriter

        target = _FlakyWriter(failures=2)
        policy = RetryPolicy(
            max_attempts=4, base_backoff_s=0.001, jitter_frac=0.0
        )
        with AsyncWriter(target, retry=policy) as writer:
            job = writer.submit("a", b"payload")
            assert job.wait(timeout=5.0)
        assert job.error is None
        assert job.attempts == 3
        assert job.fit_reservation is True

    def test_exhaustion_surfaces_at_wait(self):
        from repro.io import AsyncWriter

        target = _FlakyWriter(failures=100)
        policy = RetryPolicy(
            max_attempts=2, base_backoff_s=0.001, jitter_frac=0.0
        )
        with AsyncWriter(target, retry=policy) as writer:
            job = writer.submit("a", b"payload")
            with pytest.raises(OSError, match="transient"):
                job.wait(timeout=5.0)
        assert job.attempts == 2

    def test_no_policy_fails_immediately(self):
        from repro.io import AsyncWriter

        target = _FlakyWriter(failures=1)
        with AsyncWriter(target) as writer:
            job = writer.submit("a", b"payload")
            with pytest.raises(OSError):
                job.wait(timeout=5.0)
        assert job.attempts == 1


class TestBandwidthBursts:
    def test_burst_slows_write(self):
        plan = FaultPlan(
            bandwidth=BandwidthFault(probability=1.0, min_factor=0.1)
        )
        fs, _ = _fs(plan)
        duration = fs.write(0, 10_000_000)
        assert duration > _MODEL.write_time(10_000_000)

    def test_telemetry_events_emitted(self):
        tracer = Tracer()
        plan = FaultPlan(
            write_error=WriteErrorFault(probability=0.6),
            bandwidth=BandwidthFault(probability=0.5, min_factor=0.1),
        )
        injector = FaultInjector(plan, seed=2)
        fs = SimulatedFileSystem(_MODEL, tracer=tracer, injector=injector)
        for op in range(60):
            try:
                fs.write(0, 100_000)
            except WriteFailedError:
                pass
        names = {e.name for e in tracer.recorder.events}
        assert "fault.injected" in names
        assert "io.retry" in names
        assert tracer.recorder.counters["io.retry"] == injector.log.retries


class TestAsyncWriterRetryObserver:
    def test_on_retry_called_per_retry(self):
        from repro.io import AsyncWriter

        target = _FlakyWriter(failures=2)
        policy = RetryPolicy(
            max_attempts=4, base_backoff_s=0.001, jitter_frac=0.0
        )
        seen = []
        with AsyncWriter(
            target,
            retry=policy,
            on_retry=lambda job, exc: seen.append((job.name, str(exc))),
        ) as writer:
            job = writer.submit("a", b"payload")
            assert job.wait(timeout=5.0)
        assert seen == [("a", "transient"), ("a", "transient")]

    def test_observer_error_does_not_fail_the_write(self):
        from repro.io import AsyncWriter

        target = _FlakyWriter(failures=1)
        policy = RetryPolicy(
            max_attempts=3, base_backoff_s=0.001, jitter_frac=0.0
        )

        def broken_observer(job, exc):
            raise RuntimeError("observer bug")

        with AsyncWriter(
            target, retry=policy, on_retry=broken_observer
        ) as writer:
            job = writer.submit("a", b"payload")
            assert job.wait(timeout=5.0)
        assert job.error is None

    def test_deadline_checked_before_sleeping(self):
        # A backoff that would land past the deadline gives up now
        # instead of sleeping the whole backoff first.
        from repro.io import AsyncWriter

        target = _FlakyWriter(failures=100)
        policy = RetryPolicy(
            max_attempts=50,
            base_backoff_s=30.0,  # would sleep 30s without the check
            jitter_frac=0.0,
            deadline_s=0.5,
        )
        with AsyncWriter(target, retry=policy) as writer:
            job = writer.submit("a", b"payload")
            with pytest.raises(OSError, match="transient"):
                job.wait(timeout=5.0)  # must fail fast, not in 30s
        assert job.attempts == 1
