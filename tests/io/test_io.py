"""Tests for the I/O substrate: throughput model, simulated FS, shared
container, and the async background writer."""

import os
import threading

import pytest

from repro.io import (
    AsyncWriter,
    IoThroughputModel,
    SharedFileReader,
    SharedFileWriter,
    SimulatedFileSystem,
)


class TestThroughputModel:
    def test_large_write_near_bandwidth(self):
        model = IoThroughputModel(
            node_bandwidth_bytes_per_s=1e9,
            processes_per_node=1,
            write_latency_s=0.001,
        )
        eff = model.effective_throughput(1_000_000_000)
        assert eff == pytest.approx(1e9, rel=0.01)

    def test_small_write_penalized(self):
        model = IoThroughputModel()
        small = model.effective_throughput(100_000)  # 100 KB
        large = model.effective_throughput(100_000_000)  # 100 MB
        assert small < large / 5

    def test_bandwidth_shared_across_processes(self):
        model = IoThroughputModel(processes_per_node=1)
        crowded = model.with_processes(4)
        assert crowded.per_process_bandwidth == pytest.approx(
            model.per_process_bandwidth / 4
        )

    def test_zero_write_free(self):
        assert IoThroughputModel().write_time(0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            IoThroughputModel().write_time(-1)

    def test_invalid_model_rejected(self):
        with pytest.raises(ValueError):
            IoThroughputModel(node_bandwidth_bytes_per_s=0)
        with pytest.raises(ValueError):
            IoThroughputModel(processes_per_node=0)


class TestSimulatedFileSystem:
    def test_accounting(self):
        fs = SimulatedFileSystem(IoThroughputModel())
        fs.write(0, 1_000_000)
        fs.write(1, 2_000_000)
        assert fs.total_bytes == 3_000_000
        assert len(fs.writes) == 2
        assert fs.mean_write_bytes == 1_500_000
        assert fs.achieved_bandwidth() > 0

    def test_reset(self):
        fs = SimulatedFileSystem(IoThroughputModel())
        fs.write(0, 100)
        fs.reset()
        assert fs.total_bytes == 0
        assert fs.achieved_bandwidth() == 0


class TestSharedFile:
    def test_reserve_write_read_round_trip(self, tmp_path):
        path = tmp_path / "dump.rpio"
        with SharedFileWriter(path) as writer:
            writer.reserve("a", 10)
            writer.reserve("b", 10)
            assert writer.write("a", b"hello")
            assert writer.write("b", b"world!")
        with SharedFileReader(path) as reader:
            assert reader.names() == ["a", "b"]
            assert reader.read("a") == b"hello"
            assert reader.read("b") == b"world!"

    def test_offsets_are_disjoint(self, tmp_path):
        path = tmp_path / "dump.rpio"
        with SharedFileWriter(path) as writer:
            offsets = [writer.reserve(f"d{i}", 100) for i in range(10)]
        assert len(set(offsets)) == 10
        assert sorted(offsets) == offsets

    def test_overflow_region_used_when_prediction_too_small(self, tmp_path):
        path = tmp_path / "dump.rpio"
        with SharedFileWriter(path) as writer:
            writer.reserve("small", 4)
            writer.reserve("next", 4)
            fit = writer.write("small", b"way too large payload")
            assert not fit
            assert writer.write("next", b"ok")
            assert writer.overflow_bytes == len(b"way too large payload")
        with SharedFileReader(path) as reader:
            assert reader.read("small") == b"way too large payload"
            assert reader.read("next") == b"ok"
            assert reader.entries["small"].overflowed

    def test_write_unreserved(self, tmp_path):
        path = tmp_path / "dump.rpio"
        with SharedFileWriter(path) as writer:
            writer.write_unreserved("extra", b"tail data")
        with SharedFileReader(path) as reader:
            assert reader.read("extra") == b"tail data"

    def test_double_reserve_rejected(self, tmp_path):
        with SharedFileWriter(tmp_path / "f") as writer:
            writer.reserve("a", 4)
            with pytest.raises(ValueError):
                writer.reserve("a", 4)

    def test_write_without_reserve_rejected(self, tmp_path):
        with SharedFileWriter(tmp_path / "f") as writer:
            with pytest.raises(KeyError):
                writer.write("ghost", b"x")

    def test_double_write_rejected(self, tmp_path):
        with SharedFileWriter(tmp_path / "f") as writer:
            writer.reserve("a", 8)
            writer.write("a", b"x")
            with pytest.raises(ValueError):
                writer.write("a", b"y")

    def test_reader_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad"
        path.write_bytes(b"not a container at all, definitely not")
        with pytest.raises(ValueError):
            SharedFileReader(path)

    def test_closed_writer_rejects_operations(self, tmp_path):
        writer = SharedFileWriter(tmp_path / "f")
        writer.close()
        with pytest.raises(ValueError):
            writer.reserve("a", 4)
        writer.close()  # idempotent


class TestAsyncWriter:
    def test_async_write_lands(self, tmp_path):
        path = tmp_path / "dump.rpio"
        with SharedFileWriter(path) as writer:
            writer.reserve("a", 16)
            with AsyncWriter(writer) as async_writer:
                job = async_writer.submit("a", b"payload")
                assert job.wait(timeout=5.0)
                assert job.fit_reservation
        with SharedFileReader(path) as reader:
            assert reader.read("a") == b"payload"

    def test_fifo_order(self, tmp_path):
        order = []
        path = tmp_path / "dump.rpio"

        class Spy(SharedFileWriter):
            def write(self, name, payload):
                order.append(name)
                return super().write(name, payload)

        with Spy(path) as writer:
            for i in range(8):
                writer.reserve(f"d{i}", 4)
            with AsyncWriter(writer) as async_writer:
                jobs = [
                    async_writer.submit(f"d{i}", b"abcd") for i in range(8)
                ]
                async_writer.drain()
        assert order == [f"d{i}" for i in range(8)]
        assert all(j.fit_reservation for j in jobs)

    def test_submit_does_not_block(self, tmp_path):
        path = tmp_path / "dump.rpio"
        release = threading.Event()

        class Slow(SharedFileWriter):
            def write(self, name, payload):
                release.wait(5.0)
                return super().write(name, payload)

        with Slow(path) as writer:
            writer.reserve("a", 4)
            async_writer = AsyncWriter(writer)
            job = async_writer.submit("a", b"data")
            assert not job.wait(timeout=0.05)  # worker is blocked
            release.set()
            assert job.wait(timeout=5.0)
            async_writer.close()

    def test_worker_error_surfaces_at_wait(self, tmp_path):
        with SharedFileWriter(tmp_path / "f") as writer:
            with AsyncWriter(writer) as async_writer:
                job = async_writer.submit("never-reserved", b"x")
                with pytest.raises(KeyError):
                    job.wait(timeout=5.0)

    def test_submit_after_close_rejected(self, tmp_path):
        with SharedFileWriter(tmp_path / "f") as writer:
            async_writer = AsyncWriter(writer)
            async_writer.close()
            with pytest.raises(ValueError):
                async_writer.submit("a", b"x")


class TestScaleContention:
    def test_single_node_no_contention(self):
        assert IoThroughputModel(num_nodes=1).contention == 1.0

    def test_contention_grows_with_nodes(self):
        m1 = IoThroughputModel(num_nodes=1)
        m16 = m1.with_nodes(16)
        assert m16.contention > m1.contention
        assert m16.per_process_bandwidth < m1.per_process_bandwidth

    def test_subfiles_relieve_contention(self):
        crowded = IoThroughputModel(num_nodes=16)
        split = crowded.with_subfiles(4)
        assert split.contention < crowded.contention
        assert split.per_process_bandwidth > crowded.per_process_bandwidth

    def test_subfiles_beyond_nodes_cap_at_one(self):
        model = IoThroughputModel(num_nodes=4).with_subfiles(16)
        assert model.contention == 1.0

    def test_with_methods_preserve_other_fields(self):
        base = IoThroughputModel(
            node_bandwidth_bytes_per_s=1e9,
            write_latency_s=0.002,
            scale_contention=0.2,
        )
        derived = base.with_processes(8).with_nodes(4).with_subfiles(2)
        assert derived.node_bandwidth_bytes_per_s == 1e9
        assert derived.write_latency_s == 0.002
        assert derived.scale_contention == 0.2
        assert derived.processes_per_node == 8
        assert derived.num_nodes == 4
        assert derived.num_subfiles == 2

    def test_invalid_subfiles(self):
        import pytest as _pytest

        with _pytest.raises(ValueError):
            IoThroughputModel(num_subfiles=0)
