"""Tests for the multi-file (subfiling) storage layout."""

import os

import pytest

from repro.io import SubfileReader, SubfileWriter


class TestSubfiling:
    def test_round_trip(self, tmp_path):
        with SubfileWriter(tmp_path / "dump", num_subfiles=3) as writer:
            for i in range(10):
                writer.reserve(f"d{i}", 16)
            for i in range(10):
                writer.write(f"d{i}", f"payload-{i}".encode())
        with SubfileReader(tmp_path / "dump") as reader:
            assert reader.names() == sorted(f"d{i}" for i in range(10))
            for i in range(10):
                assert reader.read(f"d{i}") == f"payload-{i}".encode()

    def test_datasets_spread_across_subfiles(self, tmp_path):
        with SubfileWriter(tmp_path / "dump", num_subfiles=4) as writer:
            for i in range(8):
                writer.reserve(f"d{i}", 4)
                writer.write(f"d{i}", b"abcd")
        files = [
            f
            for f in os.listdir(tmp_path / "dump")
            if f.startswith("subfile_")
        ]
        assert len(files) == 4
        sizes = {
            f: os.path.getsize(tmp_path / "dump" / f) for f in files
        }
        # Round-robin: every subfile received two datasets.
        assert len(set(sizes.values())) == 1

    def test_single_subfile_degenerates_to_shared_file(self, tmp_path):
        with SubfileWriter(tmp_path / "dump", num_subfiles=1) as writer:
            writer.reserve("a", 4)
            writer.write("a", b"data")
        with SubfileReader(tmp_path / "dump") as reader:
            assert reader.read("a") == b"data"

    def test_overflow_inside_subfile(self, tmp_path):
        with SubfileWriter(tmp_path / "dump", num_subfiles=2) as writer:
            writer.reserve("small", 2)
            assert not writer.write("small", b"much larger than two")
        with SubfileReader(tmp_path / "dump") as reader:
            assert reader.read("small") == b"much larger than two"
            assert reader.entries["small"].overflowed

    def test_write_unreserved(self, tmp_path):
        with SubfileWriter(tmp_path / "dump", num_subfiles=2) as writer:
            writer.write_unreserved("manifest", b"{}")
        with SubfileReader(tmp_path / "dump") as reader:
            assert reader.read("manifest") == b"{}"

    def test_double_reserve_rejected(self, tmp_path):
        with SubfileWriter(tmp_path / "dump") as writer:
            writer.reserve("a", 4)
            with pytest.raises(ValueError):
                writer.reserve("a", 4)

    def test_unreserved_write_rejected(self, tmp_path):
        with SubfileWriter(tmp_path / "dump") as writer:
            with pytest.raises(KeyError):
                writer.write("ghost", b"x")

    def test_unknown_read_rejected(self, tmp_path):
        with SubfileWriter(tmp_path / "dump") as writer:
            writer.reserve("a", 4)
            writer.write("a", b"data")
        with SubfileReader(tmp_path / "dump") as reader:
            with pytest.raises(KeyError):
                reader.read("nope")

    def test_invalid_subfile_count(self, tmp_path):
        with pytest.raises(ValueError):
            SubfileWriter(tmp_path / "dump", num_subfiles=0)

    def test_close_idempotent(self, tmp_path):
        writer = SubfileWriter(tmp_path / "dump")
        writer.close()
        writer.close()

    def test_entries_merged(self, tmp_path):
        with SubfileWriter(tmp_path / "dump", num_subfiles=2) as writer:
            writer.reserve("a", 1)
            writer.reserve("b", 1)
            writer.write("a", b"x")
            writer.write("b", b"y")
        with SubfileReader(tmp_path / "dump") as reader:
            assert set(reader.entries) == {"a", "b"}
