"""Tests for the real multi-process parallel dump."""

import pytest

from repro.apps import NyxModel
from repro.io import SharedFileReader
from repro.parallel import parallel_dump, parallel_verify

_FIELDS = ("temperature", "velocity_x")
_BLOCK = 8 * 1024


@pytest.fixture
def app():
    return NyxModel(seed=51, partition_shape=(12, 12, 12))


class TestParallelDump:
    def test_dump_and_verify(self, app, tmp_path):
        path = tmp_path / "p.rpio"
        stats = parallel_dump(
            path, app, ranks=3, iteration=1, fields=_FIELDS,
            block_bytes=_BLOCK,
        )
        assert stats.num_blocks > 0
        assert stats.compression_ratio > 1.0
        worst = parallel_verify(
            path, app, 3, 1, fields=_FIELDS, block_bytes=_BLOCK
        )
        for field in _FIELDS:
            assert worst[field] <= app.field(field).error_bound * (
                1 + 1e-9
            )

    def test_every_rank_block_present(self, app, tmp_path):
        path = tmp_path / "p.rpio"
        parallel_dump(
            path, app, ranks=2, iteration=0, fields=_FIELDS,
            block_bytes=_BLOCK,
        )
        with SharedFileReader(path) as reader:
            names = reader.names()
        for rank in range(2):
            for field in _FIELDS:
                assert any(
                    n.startswith(f"rank{rank}/{field}/") for n in names
                )

    def test_offsets_disjoint(self, app, tmp_path):
        path = tmp_path / "p.rpio"
        parallel_dump(
            path, app, ranks=2, iteration=0, fields=_FIELDS,
            block_bytes=_BLOCK,
        )
        with SharedFileReader(path) as reader:
            spans = sorted(
                (e.offset, e.offset + e.nbytes)
                for e in reader.entries.values()
            )
        for (_, end_a), (start_b, _) in zip(spans, spans[1:]):
            assert end_a <= start_b

    def test_verify_detects_wrong_iteration(self, app, tmp_path):
        # Reading iteration 1's file against iteration 20's data must
        # blow the bound (the data evolved) — guards against a vacuous
        # verifier.
        path = tmp_path / "p.rpio"
        parallel_dump(
            path, app, ranks=1, iteration=1,
            fields=("baryon_density",), block_bytes=_BLOCK,
        )
        with pytest.raises(AssertionError):
            parallel_verify(
                path, app, 1, 20,
                fields=("baryon_density",), block_bytes=_BLOCK,
            )

    def test_single_rank(self, app, tmp_path):
        path = tmp_path / "p.rpio"
        stats = parallel_dump(
            path, app, ranks=1, iteration=0, fields=("temperature",),
            block_bytes=_BLOCK,
        )
        assert stats.num_workers == 1
        parallel_verify(
            path, app, 1, 0, fields=("temperature",), block_bytes=_BLOCK
        )

    def test_invalid_ranks(self, app, tmp_path):
        with pytest.raises(ValueError):
            parallel_dump(tmp_path / "p", app, ranks=0, iteration=0)

    def test_stats_accounting(self, app, tmp_path):
        path = tmp_path / "p.rpio"
        stats = parallel_dump(
            path, app, ranks=2, iteration=0, fields=_FIELDS,
            block_bytes=_BLOCK,
        )
        partition = app.partition_nbytes()
        assert stats.raw_bytes == 2 * len(_FIELDS) * partition
        with SharedFileReader(path) as reader:
            stored = sum(e.nbytes for e in reader.entries.values())
        assert stored == stats.compressed_bytes
