"""The circuit breaker: every transition under a hand-advanced clock."""

import pytest

from repro.resilience import BreakerOpenError, CircuitBreaker


class FakeClock:
    def __init__(self) -> None:
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_breaker(clock, **overrides):
    kwargs = dict(
        failure_threshold=0.5,
        window=4,
        min_calls=4,
        cooldown_s=10.0,
        clock=clock,
    )
    kwargs.update(overrides)
    return CircuitBreaker("test", **kwargs)


class TestClosedToOpen:
    def test_opens_at_threshold(self):
        clock = FakeClock()
        breaker = make_breaker(clock)
        for _ in range(2):
            breaker.record_success()
        for _ in range(2):
            breaker.record_failure()
        # Window: [ok, ok, fail, fail] -> rate 0.5 >= threshold.
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_never_opens_below_min_calls(self):
        clock = FakeClock()
        breaker = make_breaker(clock, min_calls=4)
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_stays_closed_below_threshold(self):
        clock = FakeClock()
        breaker = make_breaker(clock, window=4, min_calls=4)
        for _ in range(3):
            breaker.record_success()
        breaker.record_failure()  # rate 0.25 < 0.5
        assert breaker.state == "closed"

    def test_window_slides_old_failures_out(self):
        clock = FakeClock()
        breaker = make_breaker(clock, window=4, min_calls=4)
        breaker.record_failure()
        breaker.record_failure()
        # Four successes push both failures out of the window.
        for _ in range(4):
            breaker.record_success()
        breaker.record_failure()  # rate 0.25 again, not 3/7
        assert breaker.state == "closed"


class TestOpenBehaviour:
    def _opened(self, clock):
        breaker = make_breaker(clock)
        for _ in range(4):
            breaker.record_failure()
        assert breaker.state == "open"
        return breaker

    def test_refuses_and_counts_while_open(self):
        clock = FakeClock()
        breaker = self._opened(clock)
        assert not breaker.allow()
        assert not breaker.allow()
        assert breaker.stats()["rejected"] == 2

    def test_retry_after_counts_down(self):
        clock = FakeClock()
        breaker = self._opened(clock)
        assert breaker.retry_after_s() == pytest.approx(10.0)
        clock.advance(4.0)
        assert breaker.retry_after_s() == pytest.approx(6.0)

    def test_half_open_after_cooldown(self):
        clock = FakeClock()
        breaker = self._opened(clock)
        clock.advance(10.0)
        assert breaker.state == "half-open"

    def test_half_open_admits_exactly_one_probe(self):
        clock = FakeClock()
        breaker = self._opened(clock)
        clock.advance(10.0)
        assert breaker.allow()  # the probe
        assert not breaker.allow()  # concurrent caller refused
        assert not breaker.allow()

    def test_probe_success_closes(self):
        clock = FakeClock()
        breaker = self._opened(clock)
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        # The window was cleared: one new failure cannot re-open.
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_probe_failure_reopens_for_full_cooldown(self):
        clock = FakeClock()
        breaker = self._opened(clock)
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.retry_after_s() == pytest.approx(10.0)
        clock.advance(10.0)
        assert breaker.allow()  # next probe admitted after cooldown


class TestCallWrapper:
    def test_call_raises_structured_error_when_open(self):
        clock = FakeClock()
        breaker = make_breaker(clock)
        for _ in range(4):
            with pytest.raises(RuntimeError, match="boom"):
                breaker.call(_boom)
        with pytest.raises(BreakerOpenError) as excinfo:
            breaker.call(lambda: "never runs")
        assert excinfo.value.name == "test"
        assert excinfo.value.retry_after_s == pytest.approx(10.0)

    def test_call_records_success(self):
        breaker = make_breaker(FakeClock())
        assert breaker.call(lambda: 42) == 42
        assert breaker.stats()["successes"] == 1


class TestTransitionsAndStats:
    def test_on_transition_sees_every_edge(self):
        clock = FakeClock()
        edges = []
        breaker = make_breaker(
            clock, on_transition=lambda old, new: edges.append((old, new))
        )
        for _ in range(4):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_success()
        assert edges == [
            ("closed", "open"),
            ("open", "half-open"),
            ("half-open", "closed"),
        ]

    def test_stats_shape(self):
        clock = FakeClock()
        breaker = make_breaker(clock)
        breaker.record_success()
        breaker.record_failure()
        stats = breaker.stats()
        assert stats["state"] == "closed"
        assert stats["successes"] == 1
        assert stats["failures"] == 1
        assert stats["opens"] == 0
        assert stats["window_failure_rate"] == pytest.approx(0.5)

    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="failure_threshold"):
            CircuitBreaker(failure_threshold=0.0)
        with pytest.raises(ValueError, match="window"):
            CircuitBreaker(window=0)
        with pytest.raises(ValueError, match="min_calls"):
            CircuitBreaker(min_calls=0)
        with pytest.raises(ValueError, match="cooldown_s"):
            CircuitBreaker(cooldown_s=0.0)


def _boom():
    raise RuntimeError("boom")
