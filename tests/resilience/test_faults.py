"""FaultInjector: determinism, caching, and per-class validation."""

import pytest

from repro.resilience import (
    BandwidthFault,
    CompressionFault,
    FaultInjector,
    FaultPlan,
    StallFault,
    StragglerFault,
    WriteErrorFault,
)

_FULL_PLAN = FaultPlan(
    stall=StallFault(probability=0.3, mean_duration_s=0.5),
    write_error=WriteErrorFault(probability=0.4),
    bandwidth=BandwidthFault(probability=0.3, min_factor=0.1),
    compression=CompressionFault(probability=0.2),
    straggler=StragglerFault(ranks=(1,), io_factor=2.0,
                             compression_factor=1.5),
)


class TestDeterminism:
    def test_same_seed_same_decisions(self):
        a = FaultInjector(_FULL_PLAN, seed=42)
        b = FaultInjector(_FULL_PLAN, seed=42)
        for rank in range(4):
            for it in range(5):
                for task in range(3):
                    assert a.io_stall_s(rank, it, task) == b.io_stall_s(
                        rank, it, task
                    )
                    assert a.write_error(rank, it, task) == b.write_error(
                        rank, it, task
                    )
                assert a.bandwidth_factor(rank, it) == b.bandwidth_factor(
                    rank, it
                )
                assert a.compression_fails(rank, it, 0) == (
                    b.compression_fails(rank, it, 0)
                )

    def test_query_order_does_not_matter(self):
        a = FaultInjector(_FULL_PLAN, seed=7)
        b = FaultInjector(_FULL_PLAN, seed=7)
        keys = [(r, i, t) for r in range(3) for i in range(3)
                for t in range(2)]
        forward = [a.io_stall_s(*k) for k in keys]
        backward = [b.io_stall_s(*k) for k in reversed(keys)]
        assert forward == list(reversed(backward))

    def test_different_seeds_differ(self):
        a = FaultInjector(_FULL_PLAN, seed=1)
        b = FaultInjector(_FULL_PLAN, seed=2)
        draws_a = [a.io_stall_s(r, i, 0) for r in range(8)
                   for i in range(8)]
        draws_b = [b.io_stall_s(r, i, 0) for r in range(8)
                   for i in range(8)]
        assert draws_a != draws_b

    def test_fault_kinds_independent(self):
        # Same key, different fault class: the per-kind salts keep the
        # underlying draws from being the same uniform.
        inj = FaultInjector(
            FaultPlan(
                stall=StallFault(probability=0.5),
                write_error=WriteErrorFault(probability=0.5),
            ),
            seed=3,
        )
        stalls = [inj.io_stall_s(r, 0, 0) > 0 for r in range(64)]
        errors = [inj.write_error(r, 0, 0) for r in range(64)]
        assert stalls != errors


class TestCachingAndLog:
    def test_repeated_query_counted_once(self):
        inj = FaultInjector(
            FaultPlan(stall=StallFault(probability=1.0)), seed=0
        )
        first = inj.io_stall_s(0, 0, 0)
        for _ in range(5):
            assert inj.io_stall_s(0, 0, 0) == first
        assert inj.log.injected["stall"] == 1

    def test_non_firing_draw_not_logged(self):
        inj = FaultInjector(
            FaultPlan(stall=StallFault(probability=0.0)), seed=0
        )
        assert inj.io_stall_s(0, 0, 0) == 0.0
        assert "stall" not in inj.log.injected

    def test_bandwidth_scopes_independent(self):
        plan = FaultPlan(bandwidth=BandwidthFault(probability=0.5))
        inj = FaultInjector(plan, seed=9)
        by_scope0 = [inj.bandwidth_factor(r, 0, scope=0) for r in range(64)]
        by_scope1 = [inj.bandwidth_factor(r, 0, scope=1) for r in range(64)]
        assert by_scope0 != by_scope1

    def test_straggler_factors_and_single_count(self):
        inj = FaultInjector(_FULL_PLAN, seed=0)
        assert inj.straggler_io_factor(0) == 1.0
        assert inj.straggler_io_factor(1) == 2.0
        assert inj.straggler_compression_factor(1) == 1.5
        inj.straggler_io_factor(1)
        assert inj.log.injected["straggler"] == 1
        assert inj.log.straggler_ranks == (1,)

    def test_stall_length_heavy_tailed_positive(self):
        inj = FaultInjector(
            FaultPlan(stall=StallFault(probability=1.0,
                                       mean_duration_s=0.2)),
            seed=5,
        )
        stalls = [inj.io_stall_s(r, i, 0) for r in range(10)
                  for i in range(10)]
        assert all(s > 0 for s in stalls)
        assert max(stalls) > min(stalls)

    def test_bandwidth_factor_bounds(self):
        inj = FaultInjector(
            FaultPlan(bandwidth=BandwidthFault(probability=1.0,
                                               min_factor=0.25)),
            seed=5,
        )
        factors = [inj.bandwidth_factor(r, i) for r in range(10)
                   for i in range(10)]
        assert all(0.25 <= f < 1.0 for f in factors)


class TestPlanValidation:
    @pytest.mark.parametrize(
        "cls,kwargs,field",
        [
            (StallFault, {"probability": 1.5}, "stall.probability"),
            (StallFault, {"mean_duration_s": 0.0},
             "stall.mean_duration_s"),
            (StallFault, {"tail_alpha": -1.0}, "stall.tail_alpha"),
            (WriteErrorFault, {"probability": -0.1},
             "write_error.probability"),
            (BandwidthFault, {"min_factor": 0.0}, "bandwidth.min_factor"),
            (BandwidthFault, {"min_factor": 1.5}, "bandwidth.min_factor"),
            (CompressionFault, {"probability": 2.0},
             "compression.probability"),
            (StragglerFault, {"ranks": (-1,)}, "straggler.ranks"),
            (StragglerFault, {"io_factor": 0.5}, "straggler.io_factor"),
            (StragglerFault, {"compression_factor": 0.0},
             "straggler.compression_factor"),
        ],
    )
    def test_bad_field_named_in_error(self, cls, kwargs, field):
        with pytest.raises(ValueError, match=field.replace(".", r"\.")):
            cls(**kwargs)

    def test_any_faults(self):
        assert not FaultPlan().any_faults
        assert not FaultPlan(stall=StallFault(probability=0.0)).any_faults
        assert FaultPlan(stall=StallFault(probability=0.1)).any_faults
        assert FaultPlan(
            straggler=StragglerFault(ranks=(0,), io_factor=2.0)
        ).any_faults
