"""FaultInjector: determinism, caching, and per-class validation."""

import pytest

from repro.resilience import (
    BandwidthFault,
    CompressionFault,
    FaultInjector,
    FaultPlan,
    StallFault,
    StragglerFault,
    WriteErrorFault,
)

_FULL_PLAN = FaultPlan(
    stall=StallFault(probability=0.3, mean_duration_s=0.5),
    write_error=WriteErrorFault(probability=0.4),
    bandwidth=BandwidthFault(probability=0.3, min_factor=0.1),
    compression=CompressionFault(probability=0.2),
    straggler=StragglerFault(ranks=(1,), io_factor=2.0,
                             compression_factor=1.5),
)


class TestDeterminism:
    def test_same_seed_same_decisions(self):
        a = FaultInjector(_FULL_PLAN, seed=42)
        b = FaultInjector(_FULL_PLAN, seed=42)
        for rank in range(4):
            for it in range(5):
                for task in range(3):
                    assert a.io_stall_s(rank, it, task) == b.io_stall_s(
                        rank, it, task
                    )
                    assert a.write_error(rank, it, task) == b.write_error(
                        rank, it, task
                    )
                assert a.bandwidth_factor(rank, it) == b.bandwidth_factor(
                    rank, it
                )
                assert a.compression_fails(rank, it, 0) == (
                    b.compression_fails(rank, it, 0)
                )

    def test_query_order_does_not_matter(self):
        a = FaultInjector(_FULL_PLAN, seed=7)
        b = FaultInjector(_FULL_PLAN, seed=7)
        keys = [(r, i, t) for r in range(3) for i in range(3)
                for t in range(2)]
        forward = [a.io_stall_s(*k) for k in keys]
        backward = [b.io_stall_s(*k) for k in reversed(keys)]
        assert forward == list(reversed(backward))

    def test_different_seeds_differ(self):
        a = FaultInjector(_FULL_PLAN, seed=1)
        b = FaultInjector(_FULL_PLAN, seed=2)
        draws_a = [a.io_stall_s(r, i, 0) for r in range(8)
                   for i in range(8)]
        draws_b = [b.io_stall_s(r, i, 0) for r in range(8)
                   for i in range(8)]
        assert draws_a != draws_b

    def test_fault_kinds_independent(self):
        # Same key, different fault class: the per-kind salts keep the
        # underlying draws from being the same uniform.
        inj = FaultInjector(
            FaultPlan(
                stall=StallFault(probability=0.5),
                write_error=WriteErrorFault(probability=0.5),
            ),
            seed=3,
        )
        stalls = [inj.io_stall_s(r, 0, 0) > 0 for r in range(64)]
        errors = [inj.write_error(r, 0, 0) for r in range(64)]
        assert stalls != errors


class TestCachingAndLog:
    def test_repeated_query_counted_once(self):
        inj = FaultInjector(
            FaultPlan(stall=StallFault(probability=1.0)), seed=0
        )
        first = inj.io_stall_s(0, 0, 0)
        for _ in range(5):
            assert inj.io_stall_s(0, 0, 0) == first
        assert inj.log.injected["stall"] == 1

    def test_non_firing_draw_not_logged(self):
        inj = FaultInjector(
            FaultPlan(stall=StallFault(probability=0.0)), seed=0
        )
        assert inj.io_stall_s(0, 0, 0) == 0.0
        assert "stall" not in inj.log.injected

    def test_bandwidth_scopes_independent(self):
        plan = FaultPlan(bandwidth=BandwidthFault(probability=0.5))
        inj = FaultInjector(plan, seed=9)
        by_scope0 = [inj.bandwidth_factor(r, 0, scope=0) for r in range(64)]
        by_scope1 = [inj.bandwidth_factor(r, 0, scope=1) for r in range(64)]
        assert by_scope0 != by_scope1

    def test_straggler_factors_and_single_count(self):
        inj = FaultInjector(_FULL_PLAN, seed=0)
        assert inj.straggler_io_factor(0) == 1.0
        assert inj.straggler_io_factor(1) == 2.0
        assert inj.straggler_compression_factor(1) == 1.5
        inj.straggler_io_factor(1)
        assert inj.log.injected["straggler"] == 1
        assert inj.log.straggler_ranks == (1,)

    def test_stall_length_heavy_tailed_positive(self):
        inj = FaultInjector(
            FaultPlan(stall=StallFault(probability=1.0,
                                       mean_duration_s=0.2)),
            seed=5,
        )
        stalls = [inj.io_stall_s(r, i, 0) for r in range(10)
                  for i in range(10)]
        assert all(s > 0 for s in stalls)
        assert max(stalls) > min(stalls)

    def test_bandwidth_factor_bounds(self):
        inj = FaultInjector(
            FaultPlan(bandwidth=BandwidthFault(probability=1.0,
                                               min_factor=0.25)),
            seed=5,
        )
        factors = [inj.bandwidth_factor(r, i) for r in range(10)
                   for i in range(10)]
        assert all(0.25 <= f < 1.0 for f in factors)


class TestPlanValidation:
    @pytest.mark.parametrize(
        "cls,kwargs,field",
        [
            (StallFault, {"probability": 1.5}, "stall.probability"),
            (StallFault, {"mean_duration_s": 0.0},
             "stall.mean_duration_s"),
            (StallFault, {"tail_alpha": -1.0}, "stall.tail_alpha"),
            (WriteErrorFault, {"probability": -0.1},
             "write_error.probability"),
            (BandwidthFault, {"min_factor": 0.0}, "bandwidth.min_factor"),
            (BandwidthFault, {"min_factor": 1.5}, "bandwidth.min_factor"),
            (CompressionFault, {"probability": 2.0},
             "compression.probability"),
            (StragglerFault, {"ranks": (-1,)}, "straggler.ranks"),
            (StragglerFault, {"io_factor": 0.5}, "straggler.io_factor"),
            (StragglerFault, {"compression_factor": 0.0},
             "straggler.compression_factor"),
        ],
    )
    def test_bad_field_named_in_error(self, cls, kwargs, field):
        with pytest.raises(ValueError, match=field.replace(".", r"\.")):
            cls(**kwargs)

    def test_any_faults(self):
        assert not FaultPlan().any_faults
        assert not FaultPlan(stall=StallFault(probability=0.0)).any_faults
        assert FaultPlan(stall=StallFault(probability=0.1)).any_faults
        assert FaultPlan(
            straggler=StragglerFault(ranks=(0,), io_factor=2.0)
        ).any_faults


class TestWorkerFault:
    def _injector(self, seed=3, **kwargs):
        from repro.resilience import WorkerFault

        return FaultInjector(
            FaultPlan(worker=WorkerFault(**kwargs)), seed=seed
        )

    def test_deterministic_and_cached(self):
        a = self._injector(kind="kill")
        b = self._injector(kind="kill")
        for rank in range(3):
            for attempt in range(2):
                assert a.worker_fault(rank, 1, attempt) == b.worker_fault(
                    rank, 1, attempt
                )
        # Re-querying the same key counts the injection exactly once.
        a.worker_fault(0, 1, 0)
        a.worker_fault(0, 1, 0)
        assert a.log.injected.get("worker-kill") == b.log.injected.get(
            "worker-kill"
        )

    def test_rank_and_iteration_filters(self):
        inj = self._injector(kind="kill", rank=1, iteration=2)
        assert inj.worker_fault(0, 2, 0) is None
        assert inj.worker_fault(1, 1, 0) is None
        assert inj.worker_fault(1, 2, 0) == ("kill", 2.0)

    def test_wildcards_match_everything(self):
        inj = self._injector(kind="error", rank=-1, iteration=-1)
        assert inj.worker_fault(0, 0, 0) == ("error", 2.0)
        assert inj.worker_fault(7, 9, 0) == ("error", 2.0)

    def test_attempt_budget_spares_retries(self):
        inj = self._injector(kind="kill", attempts=2)
        assert inj.worker_fault(0, 0, 0) is not None
        assert inj.worker_fault(0, 0, 1) is not None
        assert inj.worker_fault(0, 0, 2) is None

    def test_stall_carries_duration(self):
        inj = self._injector(kind="stall", stall_s=7.5)
        assert inj.worker_fault(0, 0, 0) == ("stall", 7.5)

    def test_zero_probability_never_fires(self):
        inj = self._injector(kind="kill", probability=0.0)
        assert inj.worker_fault(0, 0, 0) is None
        assert "worker-kill" not in inj.log.injected

    def test_any_faults_includes_worker(self):
        from repro.resilience import WorkerFault

        assert FaultPlan(worker=WorkerFault()).any_faults
        assert not FaultPlan(
            worker=WorkerFault(probability=0.0)
        ).any_faults

    @pytest.mark.parametrize(
        "kwargs,field",
        [
            ({"kind": "explode"}, "worker.kind"),
            ({"rank": -2}, "worker.rank"),
            ({"iteration": -5}, "worker.iteration"),
            ({"attempts": 0}, "worker.attempts"),
            ({"stall_s": 0.0}, "worker.stall_s"),
            ({"probability": 1.5}, "worker.probability"),
        ],
    )
    def test_bad_field_named_in_error(self, kwargs, field):
        from repro.resilience import WorkerFault

        with pytest.raises(ValueError, match=field.replace(".", r"\.")):
            WorkerFault(**kwargs)
