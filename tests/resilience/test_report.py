"""ResilienceLog accounting and the frozen ResilienceReport views."""

from repro.resilience import ResilienceLog


def _populated_log() -> ResilienceLog:
    log = ResilienceLog()
    log.record_injection("stall")
    log.record_injection("write_error", 3)
    log.record_retry()
    log.record_retry()
    log.record_retry_success()
    log.record_write_failure()
    log.record_fallback("raw-write")
    log.record_fallback("defer-io", nbytes=100)
    log.record_fallback("defer-write", nbytes=50)
    log.overrun_iterations = 2
    log.degraded_dumps = 1
    log.pending_deferred_bytes = 50
    log.straggler_ranks = (0, 3)
    return log


class TestLog:
    def test_defer_fallbacks_accumulate_bytes(self):
        log = _populated_log()
        assert log.deferred_writes == 2
        assert log.deferred_bytes == 150
        assert log.fallbacks == {
            "raw-write": 1, "defer-io": 1, "defer-write": 1
        }

    def test_report_freezes_current_state(self):
        log = _populated_log()
        report = log.report()
        log.record_injection("stall")
        assert dict(report.injected)["stall"] == 1
        assert report.total_injected == 4
        assert report.total_fallbacks == 3
        assert report.retries == 2
        assert report.retry_successes == 1
        assert report.write_failures == 1

    def test_reports_comparable(self):
        assert _populated_log().report() == _populated_log().report()
        assert ResilienceLog().report() != _populated_log().report()


class TestReportViews:
    def test_as_metrics_keys(self):
        metrics = _populated_log().report().as_metrics()
        assert metrics["resilience.injected"] == 4.0
        assert metrics["resilience.injected.write_error"] == 3.0
        assert metrics["resilience.fallback.defer-io"] == 1.0
        assert metrics["resilience.retries"] == 2.0
        assert metrics["resilience.pending_deferred_bytes"] == 50.0

    def test_format_is_stable_and_complete(self):
        text = _populated_log().report().format()
        assert text == _populated_log().report().format()
        for fragment in (
            "faults injected:     4",
            "write retries:       2 (1 recovered, 1 exhausted)",
            "fallbacks:           3",
            "degraded dumps:      1",
            "overrun iterations:  2",
            "150 bytes, 50 still pending",
            "straggler ranks:     0, 3",
        ):
            assert fragment in text

    def test_format_omits_stragglers_when_none(self):
        assert "straggler" not in ResilienceLog().report().format()


def _supervised_log() -> ResilienceLog:
    log = ResilienceLog()
    log.record_task_retry("it0001/rank1")
    log.record_task_retry("it0001/rank1")  # second retry, same task
    log.record_task_retry("it0000/rank0")
    log.record_task_deadline_miss()
    log.record_worker_error()
    log.record_worker_death(2)
    log.record_speculative_launch()
    log.record_speculative_win()
    log.record_rank_fallback("it0002/rank1")
    return log


class TestSupervisorTallies:
    def test_record_methods_accumulate(self):
        log = _supervised_log()
        assert log.task_retries == 3
        assert log.retried_ranks == ["it0001/rank1", "it0000/rank0"]
        assert log.task_deadline_misses == 1
        assert log.worker_errors == 1
        assert log.worker_deaths == 2
        assert log.speculative_launches == 1
        assert log.speculative_wins == 1
        assert log.fallback_ranks == ["it0002/rank1"]
        # A rank fallback is also a counted graceful degradation.
        assert log.fallbacks == {"rank-serial": 1}

    def test_report_sorts_rank_keys(self):
        report = _supervised_log().report()
        assert report.retried_ranks == ("it0000/rank0", "it0001/rank1")
        assert report.fallback_ranks == ("it0002/rank1",)
        assert report.task_retries == 3
        assert report.worker_deaths == 2

    def test_format_includes_supervisor_lines(self):
        text = _supervised_log().report().format()
        for fragment in (
            "task retries:        3 (1 deadline misses)",
            "worker failures:     1 errors, 2 deaths",
            "speculative tasks:   1 launched, 1 won",
            "retried ranks:       it0000/rank0, it0001/rank1",
            "fallback ranks:      it0002/rank1",
        ):
            assert fragment in text

    def test_format_omits_supervisor_lines_when_clean(self):
        # Modelled-only campaigns keep their historical output intact.
        text = _populated_log().report().format()
        for fragment in (
            "task retries",
            "worker failures",
            "speculative tasks",
            "retried ranks",
            "fallback ranks",
        ):
            assert fragment not in text

    def test_supervisor_tallies_stay_out_of_metrics(self):
        # Wall-clock recovery facts must not perturb the metric dict:
        # it feeds the byte-compared resumed-vs-uninterrupted reports.
        clean = _populated_log().report().as_metrics()
        log = _populated_log()
        log.record_task_retry("it0001/rank1")
        log.record_worker_death()
        log.record_task_deadline_miss()
        supervised = log.report().as_metrics()
        assert supervised == clean
