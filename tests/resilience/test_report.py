"""ResilienceLog accounting and the frozen ResilienceReport views."""

from repro.resilience import ResilienceLog


def _populated_log() -> ResilienceLog:
    log = ResilienceLog()
    log.record_injection("stall")
    log.record_injection("write_error", 3)
    log.record_retry()
    log.record_retry()
    log.record_retry_success()
    log.record_write_failure()
    log.record_fallback("raw-write")
    log.record_fallback("defer-io", nbytes=100)
    log.record_fallback("defer-write", nbytes=50)
    log.overrun_iterations = 2
    log.degraded_dumps = 1
    log.pending_deferred_bytes = 50
    log.straggler_ranks = (0, 3)
    return log


class TestLog:
    def test_defer_fallbacks_accumulate_bytes(self):
        log = _populated_log()
        assert log.deferred_writes == 2
        assert log.deferred_bytes == 150
        assert log.fallbacks == {
            "raw-write": 1, "defer-io": 1, "defer-write": 1
        }

    def test_report_freezes_current_state(self):
        log = _populated_log()
        report = log.report()
        log.record_injection("stall")
        assert dict(report.injected)["stall"] == 1
        assert report.total_injected == 4
        assert report.total_fallbacks == 3
        assert report.retries == 2
        assert report.retry_successes == 1
        assert report.write_failures == 1

    def test_reports_comparable(self):
        assert _populated_log().report() == _populated_log().report()
        assert ResilienceLog().report() != _populated_log().report()


class TestReportViews:
    def test_as_metrics_keys(self):
        metrics = _populated_log().report().as_metrics()
        assert metrics["resilience.injected"] == 4.0
        assert metrics["resilience.injected.write_error"] == 3.0
        assert metrics["resilience.fallback.defer-io"] == 1.0
        assert metrics["resilience.retries"] == 2.0
        assert metrics["resilience.pending_deferred_bytes"] == 50.0

    def test_format_is_stable_and_complete(self):
        text = _populated_log().report().format()
        assert text == _populated_log().report().format()
        for fragment in (
            "faults injected:     4",
            "write retries:       2 (1 recovered, 1 exhausted)",
            "fallbacks:           3",
            "degraded dumps:      1",
            "overrun iterations:  2",
            "150 bytes, 50 still pending",
            "straggler ranks:     0, 3",
        ):
            assert fragment in text

    def test_format_omits_stragglers_when_none(self):
        assert "straggler" not in ResilienceLog().report().format()
