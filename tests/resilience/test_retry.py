"""RetryPolicy backoff/deadline semantics and WriteFailedError context."""

import numpy as np
import pytest

from repro.resilience import (
    DEFAULT_RETRY_POLICY,
    RetryPolicy,
    WriteFailedError,
)


class TestBackoff:
    def test_exponential_growth_without_jitter(self):
        policy = RetryPolicy(
            base_backoff_s=0.1, backoff_multiplier=2.0, jitter_frac=0.0
        )
        assert policy.backoff_s(1) == pytest.approx(0.1)
        assert policy.backoff_s(2) == pytest.approx(0.2)
        assert policy.backoff_s(3) == pytest.approx(0.4)

    def test_no_rng_means_no_jitter(self):
        policy = RetryPolicy(base_backoff_s=0.1, jitter_frac=0.5)
        assert policy.backoff_s(1) == pytest.approx(0.1)

    def test_jitter_bounds(self):
        policy = RetryPolicy(
            base_backoff_s=1.0, backoff_multiplier=1.0, jitter_frac=0.2
        )
        rng = np.random.default_rng(0)
        draws = [policy.backoff_s(1, rng) for _ in range(200)]
        assert all(0.8 <= d <= 1.2 for d in draws)
        assert max(draws) > min(draws)

    def test_attempt_is_one_based(self):
        with pytest.raises(ValueError, match="1-based"):
            RetryPolicy().backoff_s(0)


class TestDeadline:
    def test_disabled_by_default(self):
        assert DEFAULT_RETRY_POLICY.deadline_s is None
        assert not DEFAULT_RETRY_POLICY.past_deadline(1e9)

    def test_enforced_when_set(self):
        policy = RetryPolicy(deadline_s=2.0)
        assert not policy.past_deadline(2.0)
        assert policy.past_deadline(2.0001)


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs,field",
        [
            ({"max_attempts": 0}, "RetryPolicy.max_attempts"),
            ({"base_backoff_s": -0.1}, "RetryPolicy.base_backoff_s"),
            ({"backoff_multiplier": 0.5},
             "RetryPolicy.backoff_multiplier"),
            ({"jitter_frac": 1.0}, "RetryPolicy.jitter_frac"),
            ({"deadline_s": 0.0}, "RetryPolicy.deadline_s"),
        ],
    )
    def test_bad_field_named_in_error(self, kwargs, field):
        with pytest.raises(ValueError, match=field.replace(".", r"\.")):
            RetryPolicy(**kwargs)


class TestWriteFailedError:
    def test_carries_context(self):
        err = WriteFailedError(
            "boom", rank=3, nbytes=1024, attempts=4, elapsed_s=1.5
        )
        assert isinstance(err, RuntimeError)
        assert (err.rank, err.nbytes, err.attempts, err.elapsed_s) == (
            3, 1024, 4, 1.5
        )
