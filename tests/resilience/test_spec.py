"""Fault-spec parsing: typed construction and field-naming errors."""

import pathlib

import pytest

from repro.resilience import (
    DEFAULT_RETRY_POLICY,
    load_fault_spec,
    parse_fault_spec,
)

_EXAMPLE = (
    pathlib.Path(__file__).parent.parent.parent
    / "examples"
    / "fault_specs"
    / "smoke.yaml"
)


class TestParse:
    def test_full_spec(self):
        spec = parse_fault_spec(
            {
                "seed": 7,
                "stall": {"probability": 0.1, "mean_duration_s": 0.4},
                "write_error": {"probability": 0.2},
                "bandwidth": {"probability": 0.15, "min_factor": 0.1},
                "compression": {"probability": 0.05},
                "straggler": {"ranks": [0, 2], "io_factor": 3.0},
                "retry": {"max_attempts": 5, "deadline_s": 2.0},
            }
        )
        assert spec.seed == 7
        assert spec.plan.stall.probability == 0.1
        assert spec.plan.straggler.ranks == (0, 2)
        assert spec.retry.max_attempts == 5
        assert spec.plan.any_faults

    def test_empty_spec_is_neutral(self):
        spec = parse_fault_spec({})
        assert not spec.plan.any_faults
        assert spec.retry == DEFAULT_RETRY_POLICY
        assert spec.seed is None

    @pytest.mark.parametrize(
        "data,fragment",
        [
            ([1, 2], "top level must be a mapping"),
            ({"bogus": {}}, "unknown fault kind 'bogus'"),
            ({"stall": 3}, "stall must be a mapping"),
            ({"stall": {"probabilty": 0.1}},
             "unknown field stall.'probabilty'"),
            ({"stall": {"probability": 2.0}},
             r"stall\.probability must be in \[0, 1\]"),
            ({"straggler": {"ranks": "all"}},
             "straggler.ranks must be a list of ints"),
            ({"straggler": {"ranks": [0, True]}},
             "straggler.ranks must be a list of ints"),
            ({"retry": {"max_attempts": 0}},
             r"RetryPolicy\.max_attempts"),
            ({"retry": {"nope": 1}}, "unknown field retry.'nope'"),
            ({"seed": "seven"}, "seed must be an integer"),
            ({"seed": True}, "seed must be an integer"),
        ],
    )
    def test_bad_spec_names_field(self, data, fragment):
        with pytest.raises(ValueError, match=fragment):
            parse_fault_spec(data)


class TestLoad:
    def test_example_spec_loads(self):
        spec = load_fault_spec(_EXAMPLE)
        assert spec.plan.any_faults
        assert spec.plan.straggler.ranks == (0,)
        assert spec.retry.deadline_s == 5.0

    def test_json_spec_loads(self, tmp_path):
        # JSON is a YAML subset: works even without PyYAML.
        path = tmp_path / "spec.json"
        path.write_text('{"write_error": {"probability": 0.5}}')
        spec = load_fault_spec(path)
        assert spec.plan.write_error.probability == 0.5

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.yaml"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            load_fault_spec(path)

    def test_error_carries_path(self, tmp_path):
        path = tmp_path / "bad.yaml"
        path.write_text("stall: {probability: 2.0}\n")
        with pytest.raises(ValueError, match="bad.yaml"):
            load_fault_spec(path)

    def test_missing_file_raises_oserror(self, tmp_path):
        with pytest.raises(OSError):
            load_fault_spec(tmp_path / "nope.yaml")


class TestWorkerSection:
    def test_worker_section_parses(self):
        spec = parse_fault_spec(
            {
                "worker": {
                    "kind": "stall",
                    "rank": 1,
                    "iteration": 2,
                    "attempts": 3,
                    "stall_s": 1.5,
                }
            }
        )
        worker = spec.plan.worker
        assert worker.kind == "stall"
        assert worker.rank == 1
        assert worker.iteration == 2
        assert worker.attempts == 3
        assert worker.stall_s == 1.5
        assert spec.plan.any_faults

    def test_worker_defaults(self):
        worker = parse_fault_spec({"worker": {}}).plan.worker
        assert worker.kind == "kill"
        assert worker.rank == -1 and worker.iteration == -1

    @pytest.mark.parametrize(
        "data,fragment",
        [
            ({"worker": {"kind": 3}}, "worker.kind must be a string"),
            ({"worker": {"kind": "explode"}},
             "worker.kind must be one of"),
            ({"worker": {"rank": "one"}},
             "worker.rank must be an integer"),
            ({"worker": {"rank": True}},
             "worker.rank must be an integer"),
            ({"worker": {"attempts": 1.5}},
             "worker.attempts must be an integer"),
            ({"worker": {"stall_s": "long"}},
             "worker.stall_s must be a number"),
            ({"worker": {"bogus": 1}}, "unknown field worker.'bogus'"),
        ],
    )
    def test_bad_worker_field_named(self, data, fragment):
        with pytest.raises(ValueError, match=fragment):
            parse_fault_spec(data)

    def test_example_worker_specs_load(self):
        base = _EXAMPLE.parent
        kill = load_fault_spec(base / "worker_kill.yaml")
        assert kill.plan.worker.kind == "kill"
        assert kill.seed == 7
        stall = load_fault_spec(base / "worker_stall.yaml")
        assert stall.plan.worker.kind == "stall"
        assert stall.plan.worker.stall_s == 5.0
