"""Fault-spec parsing: typed construction and field-naming errors."""

import pathlib

import pytest

from repro.resilience import (
    DEFAULT_RETRY_POLICY,
    load_fault_spec,
    parse_fault_spec,
)

_EXAMPLE = (
    pathlib.Path(__file__).parent.parent.parent
    / "examples"
    / "fault_specs"
    / "smoke.yaml"
)


class TestParse:
    def test_full_spec(self):
        spec = parse_fault_spec(
            {
                "seed": 7,
                "stall": {"probability": 0.1, "mean_duration_s": 0.4},
                "write_error": {"probability": 0.2},
                "bandwidth": {"probability": 0.15, "min_factor": 0.1},
                "compression": {"probability": 0.05},
                "straggler": {"ranks": [0, 2], "io_factor": 3.0},
                "retry": {"max_attempts": 5, "deadline_s": 2.0},
            }
        )
        assert spec.seed == 7
        assert spec.plan.stall.probability == 0.1
        assert spec.plan.straggler.ranks == (0, 2)
        assert spec.retry.max_attempts == 5
        assert spec.plan.any_faults

    def test_empty_spec_is_neutral(self):
        spec = parse_fault_spec({})
        assert not spec.plan.any_faults
        assert spec.retry == DEFAULT_RETRY_POLICY
        assert spec.seed is None

    @pytest.mark.parametrize(
        "data,fragment",
        [
            ([1, 2], "top level must be a mapping"),
            ({"bogus": {}}, "unknown fault kind 'bogus'"),
            ({"stall": 3}, "stall must be a mapping"),
            ({"stall": {"probabilty": 0.1}},
             "unknown field stall.'probabilty'"),
            ({"stall": {"probability": 2.0}},
             r"stall\.probability must be in \[0, 1\]"),
            ({"straggler": {"ranks": "all"}},
             "straggler.ranks must be a list of ints"),
            ({"straggler": {"ranks": [0, True]}},
             "straggler.ranks must be a list of ints"),
            ({"retry": {"max_attempts": 0}},
             r"RetryPolicy\.max_attempts"),
            ({"retry": {"nope": 1}}, "unknown field retry.'nope'"),
            ({"seed": "seven"}, "seed must be an integer"),
            ({"seed": True}, "seed must be an integer"),
        ],
    )
    def test_bad_spec_names_field(self, data, fragment):
        with pytest.raises(ValueError, match=fragment):
            parse_fault_spec(data)


class TestLoad:
    def test_example_spec_loads(self):
        spec = load_fault_spec(_EXAMPLE)
        assert spec.plan.any_faults
        assert spec.plan.straggler.ranks == (0,)
        assert spec.retry.deadline_s == 5.0

    def test_json_spec_loads(self, tmp_path):
        # JSON is a YAML subset: works even without PyYAML.
        path = tmp_path / "spec.json"
        path.write_text('{"write_error": {"probability": 0.5}}')
        spec = load_fault_spec(path)
        assert spec.plan.write_error.probability == 0.5

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.yaml"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            load_fault_spec(path)

    def test_error_carries_path(self, tmp_path):
        path = tmp_path / "bad.yaml"
        path.write_text("stall: {probability: 2.0}\n")
        with pytest.raises(ValueError, match="bad.yaml"):
            load_fault_spec(path)

    def test_missing_file_raises_oserror(self, tmp_path):
        with pytest.raises(OSError):
            load_fault_spec(tmp_path / "nope.yaml")
