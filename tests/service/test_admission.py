"""Token-bucket admission: refill math and structured quota refusals."""

import pytest

from repro.service import REJECT_QUOTA, AdmissionController, TokenBucket


class FakeClock:
    """A hand-advanced monotonic clock for deterministic refill math."""

    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTokenBucket:
    def test_burst_then_empty(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=0.0, burst=3.0, clock=clock)
        assert [bucket.try_take() for _ in range(4)] == [
            True,
            True,
            True,
            False,
        ]

    def test_refill_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=2.0, clock=clock)
        assert bucket.try_take(2.0)
        assert not bucket.try_take()
        clock.advance(0.5)  # 2/s * 0.5s = 1 token back
        assert bucket.try_take()
        assert not bucket.try_take()

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=2.0, clock=clock)
        clock.advance(100.0)
        assert bucket.tokens == pytest.approx(2.0)

    def test_retry_after_estimate(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=4.0, burst=1.0, clock=clock)
        assert bucket.try_take()
        # 1 missing token at 4 tokens/s -> 0.25s.
        assert bucket.retry_after_s() == pytest.approx(0.25)

    def test_retry_after_is_none_without_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=0.0, burst=1.0, clock=clock)
        assert bucket.try_take()
        assert bucket.retry_after_s() is None

    def test_validation(self):
        with pytest.raises(ValueError, match="rate"):
            TokenBucket(rate=-1.0, burst=1.0)
        with pytest.raises(ValueError, match="burst"):
            TokenBucket(rate=1.0, burst=0.0)


class TestAdmissionController:
    def test_quota_rejection_is_structured(self):
        clock = FakeClock()
        controller = AdmissionController(
            rate=2.0, burst=1.0, clock=clock
        )
        assert controller.admit("alice") is None
        rejection = controller.admit("alice")
        assert rejection is not None
        assert rejection.code == REJECT_QUOTA
        assert rejection.http_status == 429
        assert rejection.retry_after_s == pytest.approx(0.5)
        assert "alice" in rejection.message
        error = rejection.to_json_dict()
        assert error["code"] == REJECT_QUOTA
        assert error["retry_after_s"] == pytest.approx(0.5)

    def test_tenants_are_isolated(self):
        clock = FakeClock()
        controller = AdmissionController(
            rate=0.0, burst=1.0, clock=clock
        )
        assert controller.admit("alice") is None
        assert controller.admit("alice") is not None
        # Alice's exhaustion does not touch Bob's bucket.
        assert controller.admit("bob") is None

    def test_per_tenant_overrides(self):
        clock = FakeClock()
        controller = AdmissionController(
            rate=0.0,
            burst=1.0,
            tenant_quotas={"big": (0.0, 3.0)},
            clock=clock,
        )
        assert [controller.admit("big") is None for _ in range(4)] == [
            True,
            True,
            True,
            False,
        ]
        assert controller.admit("small") is None
        assert controller.admit("small") is not None

    def test_campaign_cost_drains_faster(self):
        clock = FakeClock()
        controller = AdmissionController(
            rate=0.0, burst=4.0, clock=clock
        )
        assert controller.admit("alice", cost=4.0) is None
        assert controller.admit("alice") is not None

    def test_stats_shape(self):
        clock = FakeClock()
        controller = AdmissionController(
            rate=0.0, burst=1.0, clock=clock
        )
        controller.admit("alice")
        controller.admit("alice")
        stats = controller.stats()
        assert stats["tenants"]["alice"]["admitted"] == 1
        assert stats["tenants"]["alice"]["rejected"] == 1
        assert stats["tenants"]["alice"]["tokens"] == 0.0


class TestTokenBucketEdges:
    """Clock-jump and boundary behaviour, all under the fake clock."""

    def test_large_clock_jump_caps_refill_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=5.0, clock=clock)
        assert bucket.try_take(5.0)  # empty it
        clock.advance(1e9)  # a month of suspend, an NTP step...
        assert bucket.tokens == pytest.approx(5.0)  # not 1e10
        assert bucket.try_take(5.0)
        assert not bucket.try_take()

    def test_backwards_clock_does_not_refund_or_crash(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=2.0, clock=clock)
        assert bucket.try_take(2.0)
        clock.now -= 50.0  # monotonic clocks should not do this, but
        assert not bucket.try_take()  # no phantom tokens appear
        clock.now += 51.0  # net +1s from the take
        assert bucket.try_take()

    def test_burst_exactly_exhausted(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=0.0, burst=3.0, clock=clock)
        assert bucket.try_take(3.0)  # cost == burst admits
        assert bucket.tokens == pytest.approx(0.0)
        assert not bucket.try_take(1e-6)

    def test_cost_a_hair_over_burst_never_admits(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=3.0, clock=clock)
        clock.advance(1000.0)
        assert not bucket.try_take(3.001)
        assert bucket.retry_after_s(3.001) is None  # unreachable forever

    def test_zero_rate_tenant_never_refills(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=0.0, burst=2.0, clock=clock)
        assert bucket.try_take(2.0)
        clock.advance(1e6)
        assert not bucket.try_take()
        assert bucket.retry_after_s() is None

    def test_retry_after_is_exact_under_fake_clock(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=4.0, burst=2.0, clock=clock)
        assert bucket.try_take(2.0)
        assert bucket.retry_after_s(2.0) == pytest.approx(0.5)
        clock.advance(0.25)
        assert bucket.retry_after_s(2.0) == pytest.approx(0.25)
        clock.advance(0.25)
        assert bucket.retry_after_s(2.0) == pytest.approx(0.0)
        assert bucket.try_take(2.0)

    def test_fractional_refill_accumulates(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=0.1, burst=1.0, clock=clock)
        assert bucket.try_take()
        for _ in range(9):
            clock.advance(1.0)
            assert not bucket.try_take()
        clock.advance(1.0)  # 10s x 0.1/s = 1 token
        assert bucket.try_take()
