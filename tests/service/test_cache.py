"""The memo cache: LRU behaviour, counters, and the durable disk tier."""

import json

from repro.durability import fingerprint_json
from repro.service import MemoCache

SOLUTION_A = {"algorithm": "a", "makespan": 1.0}
SOLUTION_B = {"algorithm": "b", "makespan": 2.0}


class TestMemoryTier:
    def test_miss_then_hit(self):
        cache = MemoCache(capacity=4)
        assert cache.get("k1") is None
        cache.put("k1", SOLUTION_A)
        assert cache.get("k1") == SOLUTION_A
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["stores"] == 1

    def test_lru_eviction_order(self):
        cache = MemoCache(capacity=2)
        cache.put("k1", SOLUTION_A)
        cache.put("k2", SOLUTION_B)
        # Touch k1 so k2 becomes the least recently used.
        assert cache.get("k1") == SOLUTION_A
        cache.put("k3", SOLUTION_A)
        assert cache.get("k2") is None  # evicted
        assert cache.get("k1") == SOLUTION_A
        assert cache.get("k3") == SOLUTION_A
        assert cache.stats()["evictions"] == 1
        assert len(cache) == 2

    def test_capacity_zero_disables(self):
        cache = MemoCache(capacity=0)
        cache.put("k1", SOLUTION_A)
        assert cache.get("k1") is None
        assert len(cache) == 0
        assert cache.stats()["stores"] == 0

    def test_negative_capacity_rejected(self):
        import pytest

        with pytest.raises(ValueError, match="capacity"):
            MemoCache(capacity=-1)


class TestDiskTier:
    def test_survives_restart(self, tmp_path):
        first = MemoCache(capacity=4, cache_dir=str(tmp_path))
        first.put("k1", SOLUTION_A)
        # A fresh instance over the same directory serves the entry.
        second = MemoCache(capacity=4, cache_dir=str(tmp_path))
        assert second.get("k1") == SOLUTION_A
        stats = second.stats()
        assert stats["disk_hits"] == 1
        assert stats["misses"] == 1  # the memory tier still missed
        # The promoted entry now hits in memory.
        assert second.get("k1") == SOLUTION_A
        assert second.stats()["hits"] == 1

    def test_entry_is_self_fingerprinted(self, tmp_path):
        cache = MemoCache(capacity=4, cache_dir=str(tmp_path))
        cache.put("k1", SOLUTION_A)
        document = json.loads((tmp_path / "k1.json").read_text())
        assert document["key"] == "k1"
        assert document["crc32c"] == fingerprint_json(document["solution"])

    def test_corrupt_entry_rejected_not_served(self, tmp_path):
        cache = MemoCache(capacity=4, cache_dir=str(tmp_path))
        cache.put("k1", SOLUTION_A)
        path = tmp_path / "k1.json"
        document = json.loads(path.read_text())
        document["solution"]["makespan"] = 99.0  # tamper, keep old crc
        path.write_text(json.dumps(document))
        fresh = MemoCache(capacity=4, cache_dir=str(tmp_path))
        assert fresh.get("k1") is None
        assert fresh.stats()["disk_rejects"] == 1

    def test_garbage_entry_rejected(self, tmp_path):
        (tmp_path / "k1.json").write_text("{not json")
        cache = MemoCache(capacity=4, cache_dir=str(tmp_path))
        assert cache.get("k1") is None

    def test_wrong_key_rejected(self, tmp_path):
        """A renamed entry (key/filename mismatch) is never served."""
        cache = MemoCache(capacity=4, cache_dir=str(tmp_path))
        cache.put("k1", SOLUTION_A)
        (tmp_path / "k1.json").rename(tmp_path / "k2.json")
        fresh = MemoCache(capacity=4, cache_dir=str(tmp_path))
        assert fresh.get("k2") is None
        assert fresh.stats()["disk_rejects"] == 1

    def test_no_temp_files_left_behind(self, tmp_path):
        from repro.durability import find_stale_temps

        cache = MemoCache(capacity=4, cache_dir=str(tmp_path))
        for i in range(5):
            cache.put(f"k{i}", SOLUTION_A)
        assert find_stale_temps(tmp_path) == []


class TestStaleTempSweep:
    def test_open_removes_crashed_writer_temps(self, tmp_path):
        from repro.durability import temp_path_for

        # What a SIGKILL'd DurableFile writer leaves behind.
        for i in range(3):
            with open(temp_path_for(tmp_path / f"k{i}.json"), "w") as fh:
                fh.write("partial")
        (tmp_path / "keep.json").write_text("{}")
        cache = MemoCache(capacity=4, cache_dir=str(tmp_path))
        from repro.durability import find_stale_temps

        assert find_stale_temps(tmp_path) == []
        assert (tmp_path / "keep.json").exists()  # real entries untouched
        assert cache.stats()["stale_temps_removed"] == 3

    def test_clean_directory_sweeps_nothing(self, tmp_path):
        cache = MemoCache(capacity=4, cache_dir=str(tmp_path))
        cache.put("k1", SOLUTION_A)
        fresh = MemoCache(capacity=4, cache_dir=str(tmp_path))
        assert fresh.stats()["stale_temps_removed"] == 0
        assert fresh.get("k1") == SOLUTION_A


class TestDiskBreaker:
    class FakeClock:
        def __init__(self):
            self.now = 0.0

        def __call__(self):
            return self.now

    def make_breaker(self, clock):
        from repro.resilience import CircuitBreaker

        return CircuitBreaker(
            "disk",
            failure_threshold=0.5,
            window=4,
            min_calls=2,
            cooldown_s=60.0,
            clock=clock,
        )

    def test_disk_errors_open_the_breaker_and_degrade_to_memory(
        self, tmp_path, monkeypatch
    ):
        clock = self.FakeClock()
        breaker = self.make_breaker(clock)
        cache = MemoCache(
            capacity=4, cache_dir=str(tmp_path), breaker=breaker
        )

        def broken_path(key):
            raise OSError("disk on fire")

        monkeypatch.setattr(cache, "_disk_path", broken_path)
        # Failures accumulate until the breaker opens...
        cache.put("k1", SOLUTION_A)
        cache.put("k2", SOLUTION_B)
        assert breaker.state == "open"
        stats = cache.stats()
        assert stats["disk_errors"] == 2
        assert stats["disk_breaker"] == "open"
        # ...after which the disk tier is skipped, not retried, and the
        # memory tier still serves both entries.
        cache.put("k3", SOLUTION_A)
        assert cache.stats()["disk_skipped"] == 1
        assert cache.get("k1") == SOLUTION_A
        assert cache.get("k2") == SOLUTION_B

    def test_probe_reenables_the_disk_tier(self, tmp_path, monkeypatch):
        clock = self.FakeClock()
        breaker = self.make_breaker(clock)
        cache = MemoCache(
            capacity=4, cache_dir=str(tmp_path), breaker=breaker
        )
        original = cache._disk_path

        def broken_path(key):
            raise OSError("disk on fire")

        monkeypatch.setattr(cache, "_disk_path", broken_path)
        cache.put("k1", SOLUTION_A)
        cache.put("k2", SOLUTION_B)
        assert breaker.state == "open"
        # The disk heals and the cooldown elapses: the next call is the
        # half-open probe; its success closes the breaker.
        monkeypatch.setattr(cache, "_disk_path", original)
        clock.now += 60.0
        cache.put("k3", SOLUTION_A)
        assert breaker.state == "closed"
        fresh = MemoCache(capacity=4, cache_dir=str(tmp_path))
        assert fresh.get("k3") == SOLUTION_A  # the probe store landed

    def test_ordinary_misses_are_not_disk_failures(self, tmp_path):
        clock = self.FakeClock()
        breaker = self.make_breaker(clock)
        cache = MemoCache(
            capacity=4, cache_dir=str(tmp_path), breaker=breaker
        )
        for i in range(10):
            assert cache.get(f"absent-{i}") is None
        assert breaker.state == "closed"
        assert cache.stats()["disk_errors"] == 0
