"""Crash consistency of the service: SIGKILL mid-campaign, then recover.

The service inherits the durability stack's guarantees: a campaign
submitted over HTTP with a server-side journal can lose its server to
``SIGKILL`` at any moment, and what remains on disk is never torn —
the journal scrubs clean, holds only committed iterations, and
``repro campaign --resume`` finishes the run offline.
"""

import os
import signal
import subprocess
import sys
import threading
import time

import pytest

import repro
from repro.durability import find_stale_temps, read_journal, verify_journal
from repro.service import ServiceClient, ServiceUnavailableError

SRC_DIR = str(
    os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
)


def _spawn_server(tmp_path):
    """Start ``repro serve`` on an ephemeral port; return (proc, port)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0"],
        cwd=tmp_path,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    deadline = time.monotonic() + 20.0
    port = None
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        if "listening on http://" in line:
            port = int(line.rsplit(":", 1)[1])
            break
    if port is None:
        proc.kill()
        pytest.fail("repro serve never printed its listening line")
    return proc, port


def test_sigkill_mid_campaign_leaves_no_torn_files(tmp_path):
    proc, port = _spawn_server(tmp_path)
    journal = tmp_path / "campaign.jsonl"
    try:
        client = ServiceClient("127.0.0.1", port, timeout=120.0)
        client.wait_healthy()

        # A long campaign so the kill lands mid-run; the request rides
        # a helper thread because the server dies before answering.
        def submit():
            try:
                client.campaign(
                    {
                        "app": "nyx",
                        "nodes": 2,
                        "ppn": 2,
                        "iterations": 500,
                        "seed": 3,
                        "journal": str(journal),
                    }
                )
            except ServiceUnavailableError:
                pass  # expected: the server was killed under us

        request = threading.Thread(target=submit, daemon=True)
        request.start()

        # Wait until the campaign has really committed work...
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            if journal.exists() and journal.read_bytes().count(
                b'"commit"'
            ) >= 2:
                break
            time.sleep(0.02)
        else:
            pytest.fail("campaign never started committing iterations")

        # ...then kill the server dead, no cleanup handlers.
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=20.0)
        request.join(timeout=20.0)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=20.0)

    # Nothing torn anywhere: every temp file was renamed or abandoned
    # in a way the stale-temp sweep identifies.
    assert find_stale_temps(tmp_path) == []

    # The journal's committed prefix survived intact.
    records, _, _ = read_journal(journal)
    commits = [
        r["data"]["iteration"] for r in records if r["type"] == "commit"
    ]
    assert commits == list(range(len(commits)))
    assert len(commits) >= 2
    assert verify_journal(journal).ok

    # The interrupted campaign resumes to completion offline.
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR
    resumed = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro",
            "campaign",
            "--resume",
            str(journal),
        ],
        cwd=tmp_path,
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert resumed.returncode == 0, resumed.stderr
    scrub = verify_journal(journal)
    assert scrub.ok
    records, _, torn = read_journal(journal)
    assert not torn
    assert any(r["type"] == "end" for r in records)


def test_sigkill_with_persistent_cache_leaves_no_torn_entries(tmp_path):
    """Killing the server right after cached solves leaves the on-disk
    cache tier readable or absent — never torn."""
    cache_dir = tmp_path / "cache"
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--cache-dir",
            str(cache_dir),
        ],
        cwd=tmp_path,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        port = None
        deadline = time.monotonic() + 20.0
        while time.monotonic() < deadline:
            line = proc.stdout.readline()
            if not line:
                break
            if "listening on http://" in line:
                port = int(line.rsplit(":", 1)[1])
                break
        assert port is not None, "serve never bound"
        client = ServiceClient("127.0.0.1", port, timeout=60.0)
        client.wait_healthy()
        from repro.core import instance_json_dict
        from tests.conftest import figure1_instance

        status, body = client.solve(
            {"instance": instance_json_dict(figure1_instance())}
        )
        assert status == 200
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=20.0)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=20.0)

    assert find_stale_temps(tmp_path) == []
    # The published cache entry is valid: a fresh cache serves it.
    from repro.service import MemoCache

    cache = MemoCache(capacity=8, cache_dir=str(cache_dir))
    assert cache.get(body["key"]) == body["solution"]


# ----------------------------------------------------------------------
# Ledger crash points: SIGKILL-equivalent crashes at the three instants
# whose recovery behaviour differs, then restart and prove convergence.
# ----------------------------------------------------------------------

from repro.durability import CRASH_EXIT_CODE, SERVICE_CRASH_POINTS
from repro.durability.journal import read_journal as _read_records
from repro.resilience import RetryPolicy


def _spawn_ledger_server(tmp_path, extra_env=None):
    """``repro serve`` with a ledger and persistent cache; returns
    (proc, port, banner_lines)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR
    env.pop("REPRO_SERVICE_CRASH", None)
    env.pop("REPRO_SERVICE_CRASH_TOKEN", None)
    if extra_env:
        env.update(extra_env)
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--ledger",
            str(tmp_path / "requests.jsonl"),
            "--cache-dir",
            str(tmp_path / "cache"),
        ],
        cwd=tmp_path,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    deadline = time.monotonic() + 30.0
    port, banner = None, []
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        banner.append(line)
        if "listening on http://" in line:
            port = int(line.rsplit(":", 1)[1])
            break
    if port is None:
        proc.kill()
        pytest.fail(f"serve never bound; output: {''.join(banner)}")
    return proc, port, banner


def _solve_payload():
    from repro.core import instance_json_dict
    from tests.conftest import figure1_instance

    return {"instance": instance_json_dict(figure1_instance())}


def _baseline_solution():
    """The uninterrupted result the recovered service must reproduce."""
    from repro.service import SchedulingService, ServiceConfig

    service = SchedulingService(ServiceConfig(workers=1))
    try:
        status, body = service.solve(_solve_payload())
        assert status == 200
        return body["solution"]
    finally:
        service.shutdown()


@pytest.mark.parametrize("point", SERVICE_CRASH_POINTS)
def test_crash_point_recovers_without_loss_or_rerun(tmp_path, point):
    ledger = tmp_path / "requests.jsonl"
    baseline = _baseline_solution()

    # 1. A server armed to crash at the point under test.
    proc, port, _ = _spawn_ledger_server(
        tmp_path, extra_env={"REPRO_SERVICE_CRASH": point}
    )
    try:
        client = ServiceClient("127.0.0.1", port, timeout=60.0)
        client.wait_healthy()
        with pytest.raises(ServiceUnavailableError):
            client.solve(_solve_payload())
        proc.wait(timeout=30.0)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=20.0)
    assert proc.returncode == CRASH_EXIT_CODE

    # 2. The crash left a durable open record and no close.
    records, _, _ = _read_records(ledger)
    opens = [r for r in records if r["type"] == "open"]
    closes = [r for r in records if r["type"] == "close"]
    assert len(opens) == 1
    assert closes == []

    # 3. Restart without chaos: startup replay settles the request.
    proc, port, banner = _spawn_ledger_server(tmp_path)
    try:
        assert any("recovered 1 request(s)" in line for line in banner)
        client = ServiceClient("127.0.0.1", port, timeout=60.0)
        client.wait_healthy()
        status, status_body = client.status()
        assert status == 200
        assert status_body["requests"]["replayed"] == 1
        assert status_body["ledger"]["open"] == 0
        if point == "pre-completion":
            # The result had already reached the durable cache tier:
            # replay converged through it instead of re-executing.
            assert status_body["cache"]["disk_hits"] >= 1

        # 4. The same request now returns the baseline, byte-equal.
        status, body = client.solve(_solve_payload())
        assert status == 200
        assert body["solution"] == baseline
        assert client.shutdown()[0] == 200
        proc.wait(timeout=30.0)
        assert proc.returncode == 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=20.0)

    # 5. The replay's close record holds the baseline too — the ledger
    # is the audit trail that nothing ran twice or diverged.
    records, _, torn = _read_records(ledger)
    assert not torn
    closes = [r for r in records if r["type"] == "close"]
    assert len(closes) == 1
    assert closes[0]["data"]["status"] == 200
    assert closes[0]["data"]["body"]["solution"] == baseline
    if point == "pre-completion":
        assert closes[0]["data"]["body"]["cache"] == "hit"

    # 6. ``repro verify`` scrubs the ledger clean.
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR
    scrub = subprocess.run(
        [sys.executable, "-m", "repro", "verify", str(ledger)],
        env=env,
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert scrub.returncode == 0, scrub.stdout + scrub.stderr
    assert "ledger" in scrub.stdout


def test_supervised_crash_is_a_latency_blip_for_a_retrying_client(
    tmp_path,
):
    """The whole self-healing loop: watchdog + ledger + client retries.

    A supervised server crashes mid-dispatch (once, token-armed); the
    watchdog restarts it, startup replay settles the request, and the
    retrying client's idempotent resubmission gets the baseline answer
    — no error ever surfaces to the caller.
    """
    import socket

    baseline = _baseline_solution()
    token = tmp_path / "crash-token"
    token.write_text("")

    # A fixed port keeps the client's address stable across restarts.
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()

    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR
    env["REPRO_SERVICE_CRASH"] = "mid-dispatch"
    env["REPRO_SERVICE_CRASH_TOKEN"] = str(token)
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--supervised",
            "--port",
            str(port),
            "--ledger",
            str(tmp_path / "requests.jsonl"),
            "--cache-dir",
            str(tmp_path / "cache"),
            "--heartbeat-file",
            str(tmp_path / "heartbeat"),
            "--max-restarts",
            "3",
            "--restart-backoff",
            "0.1",
        ],
        cwd=tmp_path,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        client = ServiceClient(
            "127.0.0.1",
            port,
            timeout=60.0,
            retry=RetryPolicy(
                max_attempts=10,
                base_backoff_s=0.5,
                backoff_multiplier=1.5,
            ),
        )
        client.wait_healthy(timeout=60.0)
        status, body = client.solve(_solve_payload())
        assert status == 200
        assert body["solution"] == baseline
        assert not token.exists()  # the crash really fired

        status, _ = client.shutdown()
        assert status == 200
        proc.wait(timeout=60.0)
        output = proc.stdout.read()
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=20.0)
    assert proc.returncode == 0, output
    # The watchdog really restarted the child: two spawn events, and a
    # second listening banner after the recovery replay.
    assert output.count("listening on http://") >= 2, output
    assert "child_died" in output
    assert "recovered 1 request(s)" in output
