"""Crash consistency of the service: SIGKILL mid-campaign, then recover.

The service inherits the durability stack's guarantees: a campaign
submitted over HTTP with a server-side journal can lose its server to
``SIGKILL`` at any moment, and what remains on disk is never torn —
the journal scrubs clean, holds only committed iterations, and
``repro campaign --resume`` finishes the run offline.
"""

import os
import signal
import subprocess
import sys
import threading
import time

import pytest

import repro
from repro.durability import find_stale_temps, read_journal, verify_journal
from repro.service import ServiceClient, ServiceUnavailableError

SRC_DIR = str(
    os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
)


def _spawn_server(tmp_path):
    """Start ``repro serve`` on an ephemeral port; return (proc, port)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0"],
        cwd=tmp_path,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    deadline = time.monotonic() + 20.0
    port = None
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        if "listening on http://" in line:
            port = int(line.rsplit(":", 1)[1])
            break
    if port is None:
        proc.kill()
        pytest.fail("repro serve never printed its listening line")
    return proc, port


def test_sigkill_mid_campaign_leaves_no_torn_files(tmp_path):
    proc, port = _spawn_server(tmp_path)
    journal = tmp_path / "campaign.jsonl"
    try:
        client = ServiceClient("127.0.0.1", port, timeout=120.0)
        client.wait_healthy()

        # A long campaign so the kill lands mid-run; the request rides
        # a helper thread because the server dies before answering.
        def submit():
            try:
                client.campaign(
                    {
                        "app": "nyx",
                        "nodes": 2,
                        "ppn": 2,
                        "iterations": 500,
                        "seed": 3,
                        "journal": str(journal),
                    }
                )
            except ServiceUnavailableError:
                pass  # expected: the server was killed under us

        request = threading.Thread(target=submit, daemon=True)
        request.start()

        # Wait until the campaign has really committed work...
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            if journal.exists() and journal.read_bytes().count(
                b'"commit"'
            ) >= 2:
                break
            time.sleep(0.02)
        else:
            pytest.fail("campaign never started committing iterations")

        # ...then kill the server dead, no cleanup handlers.
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=20.0)
        request.join(timeout=20.0)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=20.0)

    # Nothing torn anywhere: every temp file was renamed or abandoned
    # in a way the stale-temp sweep identifies.
    assert find_stale_temps(tmp_path) == []

    # The journal's committed prefix survived intact.
    records, _, _ = read_journal(journal)
    commits = [
        r["data"]["iteration"] for r in records if r["type"] == "commit"
    ]
    assert commits == list(range(len(commits)))
    assert len(commits) >= 2
    assert verify_journal(journal).ok

    # The interrupted campaign resumes to completion offline.
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR
    resumed = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro",
            "campaign",
            "--resume",
            str(journal),
        ],
        cwd=tmp_path,
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert resumed.returncode == 0, resumed.stderr
    scrub = verify_journal(journal)
    assert scrub.ok
    records, _, torn = read_journal(journal)
    assert not torn
    assert any(r["type"] == "end" for r in records)


def test_sigkill_with_persistent_cache_leaves_no_torn_entries(tmp_path):
    """Killing the server right after cached solves leaves the on-disk
    cache tier readable or absent — never torn."""
    cache_dir = tmp_path / "cache"
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--cache-dir",
            str(cache_dir),
        ],
        cwd=tmp_path,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        port = None
        deadline = time.monotonic() + 20.0
        while time.monotonic() < deadline:
            line = proc.stdout.readline()
            if not line:
                break
            if "listening on http://" in line:
                port = int(line.rsplit(":", 1)[1])
                break
        assert port is not None, "serve never bound"
        client = ServiceClient("127.0.0.1", port, timeout=60.0)
        client.wait_healthy()
        from repro.core import instance_json_dict
        from tests.conftest import figure1_instance

        status, body = client.solve(
            {"instance": instance_json_dict(figure1_instance())}
        )
        assert status == 200
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=20.0)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=20.0)

    assert find_stale_temps(tmp_path) == []
    # The published cache entry is valid: a fresh cache serves it.
    from repro.service import MemoCache

    cache = MemoCache(capacity=8, cache_dir=str(cache_dir))
    assert cache.get(body["key"]) == body["solution"]
