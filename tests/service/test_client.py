"""Client retry behaviour, isolated from any real server.

``_request_once`` is stubbed so every retry decision — what is
retried, what is not, which headers ride along — is asserted without
sockets or sleep-heavy backoff (the policies here use microscopic
backoff with zero jitter).
"""

import numpy as np
import pytest

from repro.resilience import RetryPolicy
from repro.service import ServiceClient, ServiceUnavailableError

FAST = RetryPolicy(
    max_attempts=4,
    base_backoff_s=0.001,
    backoff_multiplier=1.0,
    jitter_frac=0.0,
)


class StubTransport:
    """Record every attempt; pop scripted outcomes in order."""

    def __init__(self, outcomes):
        self.outcomes = list(outcomes)
        self.attempts = []

    def __call__(self, method, path, payload=None, headers=None):
        self.attempts.append(
            {"method": method, "path": path, "headers": dict(headers or {})}
        )
        outcome = self.outcomes.pop(0)
        if isinstance(outcome, Exception):
            raise outcome
        return outcome


def make_client(outcomes, retry=FAST):
    client = ServiceClient(
        "127.0.0.1", 1, retry=retry, rng=np.random.default_rng(0)
    )
    transport = StubTransport(outcomes)
    client._request_once = transport
    return client, transport


def refused():
    return ServiceUnavailableError("connection refused")


class TestRetryLoop:
    def test_connection_refused_retried_until_success(self):
        client, transport = make_client(
            [refused(), refused(), (200, {"ok": True})]
        )
        assert client.solve({"x": 1}) == (200, {"ok": True})
        assert len(transport.attempts) == 3

    def test_5xx_replies_retried(self):
        client, transport = make_client(
            [
                (503, {"error": {"code": "draining"}}),
                (500, {"error": {"code": "internal_error"}}),
                (200, {"ok": True}),
            ]
        )
        assert client.solve({"x": 1}) == (200, {"ok": True})
        assert len(transport.attempts) == 3

    def test_4xx_replies_returned_immediately(self):
        client, transport = make_client(
            [(429, {"error": {"code": "quota_exhausted"}})]
        )
        status, body = client.solve({"x": 1})
        assert status == 429
        assert len(transport.attempts) == 1

    def test_budget_exhausted_returns_last_5xx(self):
        client, transport = make_client([(503, {"n": i}) for i in range(4)])
        status, body = client.solve({"x": 1})
        assert (status, body) == (503, {"n": 3})
        assert len(transport.attempts) == 4

    def test_budget_exhausted_reraises_transport_error(self):
        client, transport = make_client([refused()] * 4)
        with pytest.raises(ServiceUnavailableError, match="refused"):
            client.solve({"x": 1})
        assert len(transport.attempts) == 4

    def test_deadline_stops_before_budget(self):
        policy = RetryPolicy(
            max_attempts=10,
            base_backoff_s=5.0,  # the first backoff already busts it
            backoff_multiplier=1.0,
            jitter_frac=0.0,
            deadline_s=1.0,
        )
        client, transport = make_client([refused()] * 10, retry=policy)
        with pytest.raises(ServiceUnavailableError):
            client.solve({"x": 1})
        assert len(transport.attempts) == 1


class TestIdempotencyKey:
    def test_same_key_on_every_attempt(self):
        client, transport = make_client(
            [refused(), (503, {}), (200, {"ok": True})]
        )
        client.solve({"x": 1})
        keys = [
            a["headers"]["X-Idempotency-Key"] for a in transport.attempts
        ]
        assert len(set(keys)) == 1

    def test_key_distinguishes_payload_and_route(self):
        def key_of(path_payloads):
            client, transport = make_client([(200, {})])
            if path_payloads[0] == "solve":
                client.solve(path_payloads[1])
            else:
                client.campaign(path_payloads[1])
            return transport.attempts[0]["headers"]["X-Idempotency-Key"]

        assert key_of(("solve", {"x": 1})) != key_of(("solve", {"x": 2}))
        assert key_of(("solve", {"x": 1})) != key_of(("campaign", {"x": 1}))
        assert key_of(("solve", {"x": 1})) == key_of(("solve", {"x": 1}))


class TestOptOut:
    def test_no_policy_means_single_shot(self):
        client, transport = make_client([refused()], retry=None)
        with pytest.raises(ServiceUnavailableError):
            client.solve({"x": 1})
        assert len(transport.attempts) == 1
        assert "X-Idempotency-Key" not in transport.attempts[0]["headers"]

    def test_campaign_retries_like_solve(self):
        client, transport = make_client([refused(), (200, {"ok": True})])
        assert client.campaign({"app": "nyx"}) == (200, {"ok": True})
        assert len(transport.attempts) == 2

    def test_shutdown_never_retried(self):
        client, transport = make_client([refused()])
        with pytest.raises(ServiceUnavailableError):
            client.shutdown()
        assert len(transport.attempts) == 1

    def test_health_never_retried(self):
        client, transport = make_client([refused()])
        with pytest.raises(ServiceUnavailableError):
            client.health()
        assert len(transport.attempts) == 1
