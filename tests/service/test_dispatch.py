"""The batching dispatcher: coalescing, bounds, deadlines, priorities.

Every test injects its own ``solve_fn`` — the dispatcher never sees a
real solver here, so the behaviours (batch composition, queue pushback,
deadline expiry) are asserted deterministically.
"""

import threading
import time

import pytest

from repro.core.model import Interval, Job, ProblemInstance
from repro.service import REJECT_DEADLINE, SolveDispatcher, SolveWork


def make_work(
    algorithm="alg-a",
    priority=0,
    deadline_s=None,
    seed=0,
):
    """A SolveWork whose batch_key is controlled by ``algorithm``."""
    instance = ProblemInstance(
        begin=0.0,
        end=10.0,
        jobs=(Job(0, 1.0, 1.0 + seed * 0.001),),
        main_obstacles=(Interval(3.0, 4.0),),
        background_obstacles=(),
    )
    return SolveWork(
        instance=instance,
        algorithm=algorithm,
        engine="sim",
        time_limit=None,
        tenant="default",
        priority=priority,
        deadline_s=deadline_s,
        use_cache=True,
        key=f"key-{algorithm}-{seed}",
    )


class TestBatching:
    def test_compatible_requests_coalesce(self):
        release = threading.Event()
        sizes = []

        def solve_fn(work):
            release.wait(5.0)
            return {"key": work.key}

        dispatcher = SolveDispatcher(
            solve_fn,
            workers=1,
            max_batch=8,
            batch_window_s=0.25,
        )
        try:
            # All three arrive within the batch window and share a
            # batch_key, so they run as one dispatch.
            futures = [
                dispatcher.try_submit(make_work(seed=i)) for i in range(3)
            ]
            release.set()
            outcomes = [f.result(timeout=5.0) for f in futures]
            sizes = [o.batch_size for o in outcomes]
            assert sizes == [3, 3, 3]
            assert [o.solution["key"] for o in outcomes] == [
                "key-alg-a-0",
                "key-alg-a-1",
                "key-alg-a-2",
            ]
            stats = dispatcher.stats()
            assert stats["batches"] == 1
            assert stats["dispatched"] == 3
            assert stats["coalesced"] == 3
            assert stats["largest_batch"] == 3
        finally:
            dispatcher.shutdown()

    def test_incompatible_requests_do_not_coalesce(self):
        def solve_fn(work):
            return {"key": work.key}

        dispatcher = SolveDispatcher(
            solve_fn, workers=1, max_batch=8, batch_window_s=0.05
        )
        try:
            f1 = dispatcher.try_submit(make_work(algorithm="alg-a"))
            f2 = dispatcher.try_submit(make_work(algorithm="alg-b"))
            assert f1.result(5.0).batch_size == 1
            assert f2.result(5.0).batch_size == 1
            assert dispatcher.stats()["batches"] == 2
        finally:
            dispatcher.shutdown()

    def test_max_batch_is_respected(self):
        started = threading.Event()

        def solve_fn(work):
            started.set()
            return {"key": work.key}

        dispatcher = SolveDispatcher(
            solve_fn, workers=1, max_batch=2, batch_window_s=0.2
        )
        try:
            futures = [
                dispatcher.try_submit(make_work(seed=i)) for i in range(4)
            ]
            outcomes = [f.result(timeout=5.0) for f in futures]
            assert all(o.batch_size <= 2 for o in outcomes)
            assert dispatcher.stats()["largest_batch"] <= 2
        finally:
            dispatcher.shutdown()

    def test_priority_runs_before_fifo(self):
        """With the worker busy, a later high-priority arrival is
        dispatched before an earlier low-priority one."""
        order = []
        head_running = threading.Event()
        head_release = threading.Event()

        def solve_fn(work):
            order.append(work.algorithm)
            if work.algorithm == "head":
                head_running.set()
                head_release.wait(5.0)
            return {}

        dispatcher = SolveDispatcher(
            solve_fn, workers=1, max_batch=1, batch_window_s=0.0
        )
        try:
            first = dispatcher.try_submit(make_work(algorithm="head"))
            assert head_running.wait(5.0)
            # Both wait in the queue while the single worker is busy.
            low = dispatcher.try_submit(
                make_work(algorithm="low", priority=0)
            )
            high = dispatcher.try_submit(
                make_work(algorithm="high", priority=5)
            )
            head_release.set()
            for f in (first, low, high):
                f.result(timeout=5.0)
            assert order == ["head", "high", "low"]
        finally:
            head_release.set()
            dispatcher.shutdown()


class TestBounds:
    def test_queue_full_returns_none(self):
        release = threading.Event()
        running = threading.Event()

        def solve_fn(work):
            running.set()
            release.wait(5.0)
            return {}

        dispatcher = SolveDispatcher(
            solve_fn,
            workers=1,
            max_queue=2,
            max_batch=1,
            batch_window_s=0.0,
        )
        try:
            blocker = dispatcher.try_submit(make_work(algorithm="blocker"))
            assert running.wait(5.0)
            # The single worker is busy, so these stay queued...
            q1 = dispatcher.try_submit(make_work(seed=1))
            q2 = dispatcher.try_submit(make_work(seed=2))
            assert q1 is not None and q2 is not None
            assert dispatcher.depth == 2
            # ...and the bounded queue pushes back on the next one.
            assert dispatcher.try_submit(make_work(seed=3)) is None
            release.set()
            for f in (blocker, q1, q2):
                assert f.result(timeout=5.0).rejection is None
        finally:
            release.set()
            dispatcher.shutdown()

    def test_submit_after_shutdown_raises(self):
        dispatcher = SolveDispatcher(lambda work: {}, workers=1)
        dispatcher.shutdown()
        with pytest.raises(RuntimeError, match="shut down"):
            dispatcher.try_submit(make_work())


class TestDeadlines:
    def test_deadline_expires_queued_request(self):
        release = threading.Event()
        running = threading.Event()

        def solve_fn(work):
            running.set()
            release.wait(5.0)
            return {}

        dispatcher = SolveDispatcher(
            solve_fn,
            workers=1,
            max_queue=8,
            max_batch=1,
            batch_window_s=0.0,
        )
        try:
            blocker = dispatcher.try_submit(make_work(algorithm="blocker"))
            assert running.wait(5.0)
            doomed = dispatcher.try_submit(
                make_work(seed=1, deadline_s=0.05)
            )
            time.sleep(0.15)  # let the deadline lapse while queued
            release.set()
            outcome = doomed.result(timeout=5.0)
            assert outcome.solution is None
            assert outcome.rejection is not None
            assert outcome.rejection.code == REJECT_DEADLINE
            assert outcome.rejection.http_status == 504
            assert outcome.queue_wait_s >= 0.05
            assert blocker.result(timeout=5.0).rejection is None
            assert dispatcher.stats()["expired"] == 1
        finally:
            release.set()
            dispatcher.shutdown()

    def test_fresh_deadline_not_expired(self):
        dispatcher = SolveDispatcher(
            lambda work: {"ok": True}, workers=1, batch_window_s=0.0
        )
        try:
            future = dispatcher.try_submit(make_work(deadline_s=30.0))
            outcome = future.result(timeout=5.0)
            assert outcome.rejection is None
            assert outcome.solution == {"ok": True}
        finally:
            dispatcher.shutdown()


class TestShutdown:
    def test_drain_completes_queued_work(self):
        done = []

        def solve_fn(work):
            time.sleep(0.01)
            done.append(work.key)
            return {}

        dispatcher = SolveDispatcher(
            solve_fn, workers=1, max_batch=1, batch_window_s=0.0
        )
        futures = [
            dispatcher.try_submit(make_work(seed=i)) for i in range(5)
        ]
        dispatcher.shutdown(drain=True)
        assert len(done) == 5
        assert all(f.result(0.0).rejection is None for f in futures)

    def test_no_drain_rejects_queued_work(self):
        release = threading.Event()
        running = threading.Event()

        def solve_fn(work):
            running.set()
            release.wait(5.0)
            return {}

        dispatcher = SolveDispatcher(
            solve_fn,
            workers=1,
            max_queue=8,
            max_batch=1,
            batch_window_s=0.0,
        )
        blocker = dispatcher.try_submit(make_work(algorithm="blocker"))
        assert running.wait(5.0)
        queued = dispatcher.try_submit(make_work(seed=1))
        # Shut down while the worker is still busy: the queued entry
        # must be rejected, not dispatched.  shutdown() blocks on the
        # in-flight blocker, so it runs on a helper thread.
        shutter = threading.Thread(
            target=lambda: dispatcher.shutdown(drain=False)
        )
        shutter.start()
        outcome = queued.result(timeout=5.0)
        assert (
            outcome.rejection is not None
            and outcome.rejection.http_status == 503
        )
        release.set()
        shutter.join(timeout=5.0)
        assert not shutter.is_alive()
        assert blocker.result(timeout=5.0).rejection is None

    def test_shutdown_is_idempotent(self):
        dispatcher = SolveDispatcher(lambda work: {}, workers=1)
        dispatcher.shutdown()
        dispatcher.shutdown()

    def test_solver_exception_propagates_to_future(self):
        def solve_fn(work):
            raise RuntimeError("solver blew up")

        dispatcher = SolveDispatcher(solve_fn, workers=1, batch_window_s=0.0)
        try:
            future = dispatcher.try_submit(make_work())
            with pytest.raises(RuntimeError, match="blew up"):
                future.result(timeout=5.0)
        finally:
            dispatcher.shutdown()


class TestDrainDeadline:
    def test_expired_drain_rejects_queued_work_as_draining(self):
        """Regression: drain=True used to wait unboundedly on queued
        work.  With a hard deadline, a stalled batch cannot wedge
        shutdown — queued entries resolve as 503 ``draining``."""
        from repro.service import REJECT_DRAINING

        release = threading.Event()
        running = threading.Event()

        def solve_fn(work):
            running.set()
            release.wait(10.0)  # the stalled batch
            return {}

        dispatcher = SolveDispatcher(
            solve_fn,
            workers=1,
            max_queue=8,
            max_batch=1,
            batch_window_s=0.0,
        )
        try:
            blocker = dispatcher.try_submit(make_work(algorithm="blocker"))
            assert running.wait(5.0)
            queued = [
                dispatcher.try_submit(make_work(seed=i)) for i in range(3)
            ]
            t0 = time.monotonic()
            dispatcher.shutdown(drain=True, timeout=0.3)
            elapsed = time.monotonic() - t0
            assert elapsed < 5.0, f"shutdown took {elapsed:.1f}s"
            for future in queued:
                outcome = future.result(timeout=5.0)
                assert outcome.rejection is not None
                assert outcome.rejection.code == REJECT_DRAINING
                assert outcome.rejection.http_status == 503
            assert dispatcher.stats()["drain_rejected"] == 3
        finally:
            release.set()

    def test_generous_deadline_still_drains_everything(self):
        done = []

        def solve_fn(work):
            time.sleep(0.01)
            done.append(work.key)
            return {}

        dispatcher = SolveDispatcher(
            solve_fn, workers=1, max_batch=1, batch_window_s=0.0
        )
        futures = [
            dispatcher.try_submit(make_work(seed=i)) for i in range(5)
        ]
        dispatcher.shutdown(drain=True, timeout=30.0)
        assert len(done) == 5
        assert all(f.result(0.0).rejection is None for f in futures)
        assert dispatcher.stats()["drain_rejected"] == 0
