"""The request ledger, crash replay, and chaos hooks — all in-process.

The subprocess SIGKILL proofs live in ``test_chaos.py``; here every
ledger and recovery behaviour is exercised deterministically: the
write-ahead wire format, torn-tail repair, duplicate coalescing,
exactly-once replay through the memo cache, and campaign resume.
"""

import threading
from concurrent.futures import Future

import pytest

from repro.core import instance_json_dict
from repro.durability import JournalError, read_journal, verify_ledger, verify_path
from repro.service import (
    LedgerEntry,
    RequestLedger,
    SchedulingService,
    ServiceChaos,
    ServiceConfig,
)
from repro.service.recovery import LEDGER_VERSION
from tests.conftest import figure1_instance


def solve_payload(**extra):
    payload = {"instance": instance_json_dict(figure1_instance())}
    payload.update(extra)
    return payload


class TestRequestLedger:
    def test_open_close_roundtrip(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        with RequestLedger(path) as ledger:
            assert ledger.record_open("k1", "solve", {"a": 1})
            assert ledger.is_open("k1")
            assert ledger.incomplete() == [
                LedgerEntry(key="k1", kind="solve", payload={"a": 1})
            ]
            assert ledger.record_close("k1", 200, {"ok": True})
            assert not ledger.is_open("k1")
            assert ledger.incomplete() == []
            assert ledger.closed_body("k1") == (200, {"ok": True})

    def test_reopen_restores_state(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        with RequestLedger(path) as ledger:
            ledger.record_open("done", "solve", {"x": 1})
            ledger.record_close("done", 200, {"ok": True})
            ledger.record_open("pending", "campaign", {"app": "nyx"})
        with RequestLedger(path) as reopened:
            assert reopened.closed_body("done") == (200, {"ok": True})
            assert [e.key for e in reopened.incomplete()] == ["pending"]
            assert reopened.incomplete()[0].kind == "campaign"

    def test_replay_preserves_admission_order(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        with RequestLedger(path) as ledger:
            for i in range(5):
                ledger.record_open(f"k{i}", "solve", {})
            ledger.record_close("k2", 200, {})
        with RequestLedger(path) as reopened:
            assert [e.key for e in reopened.incomplete()] == [
                "k0",
                "k1",
                "k3",
                "k4",
            ]

    def test_duplicate_open_and_close_refused(self, tmp_path):
        with RequestLedger(tmp_path / "ledger.jsonl") as ledger:
            assert ledger.record_open("k1", "solve", {})
            assert not ledger.record_open("k1", "solve", {})
            assert ledger.record_close("k1", 200, {})
            assert not ledger.record_close("k1", 200, {})
            # Settled keys are never re-opened either.
            assert not ledger.record_open("k1", "solve", {})

    def test_close_without_open_refused(self, tmp_path):
        with RequestLedger(tmp_path / "ledger.jsonl") as ledger:
            assert not ledger.record_close("ghost", 200, {})

    def test_writes_refused_after_close(self, tmp_path):
        ledger = RequestLedger(tmp_path / "ledger.jsonl")
        ledger.close()
        assert not ledger.record_open("k1", "solve", {})

    def test_torn_tail_truncated_on_open(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        with RequestLedger(path) as ledger:
            ledger.record_open("k1", "solve", {})
        intact = path.read_bytes()
        path.write_bytes(intact + b'{"seq": 2, "type": "close"')  # torn
        with RequestLedger(path) as recovered:
            assert recovered.stats()["recovered_torn_tail"] is True
            assert [e.key for e in recovered.incomplete()] == ["k1"]
            # The tail was cut, so new appends stay record-aligned.
            recovered.record_close("k1", 200, {"ok": True})
        records, _, torn = read_journal(path)
        assert not torn
        assert [r["type"] for r in records] == ["begin", "open", "close"]

    def test_corrupt_interior_record_raises(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        with RequestLedger(path) as ledger:
            ledger.record_open("k1", "solve", {})
            ledger.record_close("k1", 200, {})
        lines = path.read_bytes().splitlines(keepends=True)
        lines[1] = lines[1].replace(b'"open"', b'"OPEN"')  # break the CRC
        path.write_bytes(b"".join(lines))
        with pytest.raises(JournalError):
            RequestLedger(path)

    def test_wrong_file_kind_rejected(self, tmp_path):
        path = tmp_path / "not-a-ledger.jsonl"
        path.write_text("")
        with pytest.raises(JournalError, match="no intact records"):
            RequestLedger(path)

    def test_stats_shape(self, tmp_path):
        with RequestLedger(tmp_path / "ledger.jsonl") as ledger:
            ledger.record_open("k1", "solve", {})
            stats = ledger.stats()
        assert stats["open"] == 1
        assert stats["closed"] == 0
        assert stats["records"] == 2  # begin + open
        assert stats["recovered_torn_tail"] is False


class TestVerifyLedger:
    def test_clean_ledger_scrubs_clean(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        with RequestLedger(path) as ledger:
            ledger.record_open("k1", "solve", {})
            ledger.record_close("k1", 200, {"ok": True})
            ledger.record_open("k2", "campaign", {})
        report = verify_ledger(path)
        assert report.ok
        assert report.kind == "ledger"
        assert any("1 pending replay" in note for note in report.notes)

    def test_verify_path_sniffs_ledger_kind(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        with RequestLedger(path):
            pass
        report = verify_path(path)  # kind="auto"
        assert report.kind == "ledger"
        assert report.ok

    def test_double_open_is_an_issue(self, tmp_path):
        from repro.durability.journal import encode_record

        path = tmp_path / "ledger.jsonl"
        with open(path, "wb") as fh:
            fh.write(
                encode_record(0, "begin", {"ledger_version": LEDGER_VERSION})
            )
            fh.write(encode_record(1, "open", {"key": "k1", "kind": "solve"}))
            fh.write(encode_record(2, "open", {"key": "k1", "kind": "solve"}))
        report = verify_ledger(path)
        assert not report.ok

    def test_corrupt_line_is_an_issue(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        with RequestLedger(path) as ledger:
            ledger.record_open("k1", "solve", {})
            ledger.record_close("k1", 200, {})
        lines = path.read_bytes().splitlines(keepends=True)
        lines[1] = lines[1].replace(b'"open"', b'"OPEN"')
        path.write_bytes(b"".join(lines))
        assert not verify_ledger(path).ok


class TestServiceChaos:
    def test_unarmed_by_default(self):
        chaos = ServiceChaos.from_env(environ={})
        assert not chaos.armed
        chaos.hit("mid-dispatch")  # never crashes
        assert chaos.hits("mid-dispatch") == 1

    def test_env_parsing(self):
        chaos = ServiceChaos.from_env(
            environ={"REPRO_SERVICE_CRASH": "pre-completion:3"}
        )
        assert (chaos.point, chaos.at_hit) == ("pre-completion", 3)
        assert chaos.armed

    def test_token_env_parsing(self, tmp_path):
        token = tmp_path / "token"
        chaos = ServiceChaos.from_env(
            environ={
                "REPRO_SERVICE_CRASH": "mid-dispatch",
                "REPRO_SERVICE_CRASH_TOKEN": str(token),
            }
        )
        assert chaos.token_path == str(token)

    def test_unknown_point_rejected(self):
        with pytest.raises(ValueError, match="unknown service crash point"):
            ServiceChaos("between-the-ticks")

    def test_missing_token_disarms_the_crash(self, tmp_path):
        # Armed with a token that does not exist: the hit is a no-op —
        # this is what keeps a supervised restart from crash-looping.
        chaos = ServiceChaos(
            "mid-dispatch", token_path=str(tmp_path / "absent")
        )
        chaos.hit("mid-dispatch")  # would os._exit(137) without the token
        assert chaos.hits("mid-dispatch") == 1


class TestServiceLedgerIntegration:
    def make_service(self, tmp_path, **overrides):
        kwargs = dict(
            workers=2,
            quota_rate=0.0,
            quota_burst=50.0,
            ledger_path=str(tmp_path / "ledger.jsonl"),
        )
        kwargs.update(overrides)
        return SchedulingService(ServiceConfig(**kwargs))

    def test_solve_is_journaled_and_settled(self, tmp_path):
        service = self.make_service(tmp_path)
        try:
            status, body = service.solve(solve_payload())
            assert status == 200
            stats = service.ledger.stats()
            assert (stats["open"], stats["closed"]) == (0, 1)
        finally:
            service.shutdown()

    def test_duplicate_submission_served_from_ledger(self, tmp_path):
        service = self.make_service(tmp_path)
        try:
            payload = solve_payload(
                idempotency_key="client-retry-1", cache=False
            )
            status1, body1 = service.solve(payload)
            status2, body2 = service.solve(payload)
            assert (status1, status2) == (200, 200)
            # Same response verbatim — not a re-execution.
            assert body2 == body1
            assert service.status_payload()["requests"]["ledger_hits"] == 1
        finally:
            service.shutdown()

    def test_concurrent_duplicates_coalesce(self, tmp_path):
        release = threading.Event()
        service = self.make_service(tmp_path, workers=1)
        original = service.dispatcher._solve_fn

        def slow_solve(work):
            release.wait(10.0)
            return original(work)

        service.dispatcher._solve_fn = slow_solve
        try:
            payload = solve_payload(idempotency_key="dup")
            first = service.begin_solve(payload)
            second = service.begin_solve(payload)
            assert isinstance(first, Future)
            assert second is first  # coalesced onto the same future
            release.set()
            status, _ = first.result(timeout=30.0)
            assert status == 200
            assert service.status_payload()["requests"]["coalesced"] == 1
        finally:
            release.set()
            service.shutdown()

    def test_recover_replays_open_entries(self, tmp_path):
        # Simulate the post-admission crash: an open record with no
        # close, then a fresh service over the same ledger.
        ledger_path = tmp_path / "ledger.jsonl"
        payload = solve_payload()
        with RequestLedger(ledger_path) as ledger:
            ledger.record_open("crashed-key", "solve", payload)

        service = self.make_service(tmp_path)
        try:
            summary = service.recover()
            assert summary == {
                "replayed": 1,
                "solve": 1,
                "campaign": 0,
                "failed": 0,
            }
            # The entry settled: a duplicate now gets the stored body.
            assert not service.ledger.is_open("crashed-key")
            status, body = service.ledger.closed_body("crashed-key")
            assert status == 200
            assert body["solution"]["makespan"] == pytest.approx(12.0)
            assert service.status_payload()["requests"]["replayed"] == 1
        finally:
            service.shutdown()

    def test_recover_converges_through_the_memo_cache(self, tmp_path):
        # Simulate the pre-completion crash: the solution reached the
        # durable cache tier but the close record was lost.  Replay
        # must hit the cache, not re-run the solver.
        cache_dir = tmp_path / "cache"
        ledger_path = tmp_path / "ledger.jsonl"
        warm = SchedulingService(
            ServiceConfig(
                quota_rate=0.0, quota_burst=50.0, cache_dir=str(cache_dir)
            )
        )
        try:
            status, baseline = warm.solve(solve_payload())
            assert status == 200
        finally:
            warm.shutdown()
        with RequestLedger(ledger_path) as ledger:
            ledger.record_open("lost-close", "solve", solve_payload())

        service = self.make_service(tmp_path, cache_dir=str(cache_dir))
        try:
            summary = service.recover()
            assert summary["replayed"] == 1 and summary["failed"] == 0
            status, body = service.ledger.closed_body("lost-close")
            assert status == 200
            assert body["cache"] == "hit"  # served, not re-executed
            assert body["solution"] == baseline["solution"]
            assert service.cache.stats()["disk_hits"] == 1
        finally:
            service.shutdown()

    def test_recover_replays_campaigns(self, tmp_path):
        ledger_path = tmp_path / "ledger.jsonl"
        campaign = {
            "app": "nyx",
            "nodes": 2,
            "ppn": 2,
            "iterations": 2,
            "seed": 7,
        }
        with RequestLedger(ledger_path) as ledger:
            ledger.record_open("campaign-key", "campaign", campaign)
        service = self.make_service(tmp_path)
        try:
            summary = service.recover()
            assert summary["campaign"] == 1 and summary["failed"] == 0
            status, body = service.ledger.closed_body("campaign-key")
            assert status == 200
            assert body["campaign"]["iterations"] == 2
        finally:
            service.shutdown()

    def test_recover_resumes_a_journaled_campaign(self, tmp_path):
        # Run a journaled campaign to completion once, to produce a
        # committed journal; then hand the same journal to a replayed
        # campaign: resume finds it complete and replays the report.
        from repro.engines import CampaignSpec, run_campaign

        journal = tmp_path / "campaign.jsonl"
        spec = CampaignSpec(
            app="nyx", nodes=2, ppn=2, iterations=3, seed=11
        )
        baseline = run_campaign(spec, journal_path=str(journal))
        baseline.close()

        payload = {
            "app": "nyx",
            "nodes": 2,
            "ppn": 2,
            "iterations": 3,
            "seed": 11,
            "journal": str(journal),
        }
        with RequestLedger(tmp_path / "ledger.jsonl") as ledger:
            ledger.record_open("resume-key", "campaign", payload)
        service = self.make_service(tmp_path)
        try:
            summary = service.recover()
            assert summary["failed"] == 0
            status, body = service.ledger.closed_body("resume-key")
            assert status == 200
            assert (
                body["campaign"]["total_time"]
                == baseline.result.total_time
            )
        finally:
            service.shutdown()

    def test_recover_without_ledger_is_a_noop(self):
        service = SchedulingService(
            ServiceConfig(quota_rate=0.0, quota_burst=50.0)
        )
        try:
            assert service.recover() == {
                "replayed": 0,
                "solve": 0,
                "campaign": 0,
                "failed": 0,
            }
        finally:
            service.shutdown()

    def test_status_reports_ledger(self, tmp_path):
        service = self.make_service(tmp_path)
        try:
            ledger_stats = service.status_payload()["ledger"]
            assert ledger_stats["records"] == 1  # the begin record
        finally:
            service.shutdown()
