"""The HTTP layer over localhost: routes, errors, graceful shutdown."""

import threading

import pytest

from repro.core import instance_json_dict
from repro.service import (
    SchedulingService,
    ServiceClient,
    ServiceConfig,
    ServiceUnavailableError,
    serve_forever,
)
from tests.conftest import figure1_instance


@pytest.fixture
def running_server():
    """A service on an ephemeral port, torn down via /shutdown."""
    service = SchedulingService(
        ServiceConfig(workers=2, quota_rate=0.0, quota_burst=50.0)
    )
    bound = {}
    ready = threading.Event()

    def on_bound(host, port):
        bound["port"] = port
        ready.set()

    thread = threading.Thread(
        target=serve_forever,
        args=(service,),
        kwargs={"port": 0, "on_bound": on_bound},
        daemon=True,
    )
    thread.start()
    assert ready.wait(10.0), "server never bound"
    client = ServiceClient("127.0.0.1", bound["port"], timeout=30.0)
    client.wait_healthy()
    yield client, service
    try:
        client.shutdown()
    except ServiceUnavailableError:
        pass  # the test already shut it down
    thread.join(timeout=20.0)
    assert not thread.is_alive(), "server did not drain and exit"


def solve_payload(**extra):
    payload = {"instance": instance_json_dict(figure1_instance())}
    payload.update(extra)
    return payload


class TestRoutes:
    def test_health(self, running_server):
        client, _ = running_server
        status, body = client.health()
        assert (status, body) == (
            200,
            {
                "ok": True,
                "draining": False,
                "breakers": {"engine": "closed", "disk_cache": "closed"},
            },
        )

    def test_solve_cold_then_cached(self, running_server):
        client, _ = running_server
        status1, body1 = client.solve(solve_payload())
        status2, body2 = client.solve(solve_payload())
        assert (status1, body1["cache"]) == (200, "miss")
        assert (status2, body2["cache"]) == (200, "hit")
        assert body1["solution"] == body2["solution"]
        assert body1["solution"]["makespan"] == pytest.approx(12.0)

    def test_status_counters_track_requests(self, running_server):
        client, _ = running_server
        client.solve(solve_payload())
        client.solve(solve_payload())
        status, body = client.status()
        assert status == 200
        assert body["requests"]["solve"] == 2
        assert body["requests"]["cache_hits"] == 1
        assert body["cache"]["hits"] == 1
        assert body["admission"]["tenants"]["default"]["admitted"] == 1

    def test_campaign_over_http(self, running_server):
        client, _ = running_server
        status, body = client.campaign(
            {"app": "nyx", "nodes": 2, "ppn": 2, "iterations": 2}
        )
        assert status == 200
        assert body["campaign"]["iterations"] == 2

    def test_solution_schedule_revalidates_client_side(
        self, running_server
    ):
        """The wire solution is complete: the client can rebuild and
        validate the schedule locally."""
        import json

        from repro.core import schedule_from_json

        client, _ = running_server
        _, body = client.solve(solve_payload())
        schedule = schedule_from_json(
            json.dumps(body["solution"]["schedule"])
        )
        schedule.validate()


class TestErrors:
    def test_not_found_is_structured(self, running_server):
        client, _ = running_server
        status, body = client._request("GET", "/nope")
        assert status == 404
        assert body["error"]["code"] == "not_found"

    def test_bad_json_body_is_a_400(self, running_server):
        client, _ = running_server
        import http.client

        conn = http.client.HTTPConnection(
            client.host, client.port, timeout=10.0
        )
        try:
            conn.request(
                "POST",
                "/solve",
                body="{not json",
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            assert response.status == 400
        finally:
            conn.close()

    def test_bad_instance_is_a_400(self, running_server):
        client, _ = running_server
        status, body = client.solve({"instance": {"bogus": 1}})
        assert status == 400
        assert body["error"]["code"] == "bad_request"

    def test_unreachable_server_raises(self):
        client = ServiceClient("127.0.0.1", 1, timeout=0.5)
        with pytest.raises(ServiceUnavailableError, match="unreachable"):
            client.health()


class TestShutdown:
    def test_shutdown_drains_and_exits(self, running_server):
        client, service = running_server
        client.solve(solve_payload())
        status, body = client.shutdown()
        assert (status, body.get("draining")) == (200, True)
        # The fixture asserts the serve thread actually exits; here,
        # assert the core drained: new work is refused.
        import time

        for _ in range(100):
            if service._draining:
                break
            time.sleep(0.05)
        assert service.health_payload()["draining"] is True


class TestIdempotencyHeader:
    def test_header_reaches_the_service_payload(self, running_server):
        """``X-Idempotency-Key`` is injected into the payload, so both
        requests settle under the same ledger/coalescing key — and the
        injected field never trips request validation."""
        import http.client
        import json as json_module

        client, service = running_server
        recorded = []
        original = service.begin_solve

        def spy(payload, **kwargs):
            recorded.append(payload.get("idempotency_key"))
            return original(payload, **kwargs)

        service.begin_solve = spy
        try:
            conn = http.client.HTTPConnection(
                client.host, client.port, timeout=10.0
            )
            try:
                conn.request(
                    "POST",
                    "/solve",
                    body=json_module.dumps(solve_payload()),
                    headers={
                        "Content-Type": "application/json",
                        "X-Idempotency-Key": "retry-attempt-key",
                    },
                )
                assert conn.getresponse().status == 200
            finally:
                conn.close()
        finally:
            service.begin_solve = original
        assert recorded == ["retry-attempt-key"]
