"""The service core end-to-end: memoization, admission, telemetry.

These tests drive :class:`SchedulingService` in-process (no HTTP), so
the acceptance guarantees are asserted directly: identical requests
return byte-identical solutions with the second served from cache and
no solver span emitted; concurrent mixed-tenant load respects quotas;
rejections are structured bodies, never tracebacks.
"""

import json
import threading

import pytest

from repro.core import instance_json_dict
from repro.service import SchedulingService, ServiceConfig
from repro.telemetry import SpanRecord, Tracer
import numpy as np

from tests.conftest import figure1_instance, random_instance


def _spans(tracer, name):
    return [
        r
        for r in tracer.recorder.records
        if isinstance(r, SpanRecord) and r.name == name
    ]


def _count_spans(tracer, name):
    return len(_spans(tracer, name))


def solve_payload(instance=None, **extra):
    payload = {
        "instance": instance_json_dict(instance or figure1_instance())
    }
    payload.update(extra)
    return payload


@pytest.fixture
def service():
    svc = SchedulingService(ServiceConfig(workers=2))
    yield svc
    svc.shutdown()


class TestMemoization:
    def test_second_identical_request_is_byte_identical_cache_hit(self):
        tracer = Tracer()
        svc = SchedulingService(ServiceConfig(workers=2), tracer=tracer)
        try:
            payload = solve_payload()
            status1, body1 = svc.solve(payload)
            assert status1 == 200 and body1["cache"] == "miss"
            solver_spans_after_cold = _count_spans(tracer, "solve")
            assert solver_spans_after_cold == 1

            status2, body2 = svc.solve(payload)
            assert status2 == 200 and body2["cache"] == "hit"
            # Byte-identical solution, straight from the memo cache.
            assert json.dumps(body2["solution"], sort_keys=True) == (
                json.dumps(body1["solution"], sort_keys=True)
            )
            assert body2["key"] == body1["key"]
            # The hit never touched the solver: no new solve span.
            assert _count_spans(tracer, "solve") == solver_spans_after_cold
            assert svc.cache.stats()["hits"] == 1
            assert svc.status_payload()["requests"]["cache_hits"] == 1
        finally:
            svc.shutdown()

    def test_every_request_emits_service_request_span(self):
        tracer = Tracer()
        svc = SchedulingService(ServiceConfig(workers=1), tracer=tracer)
        try:
            payload = solve_payload()
            svc.solve(payload)
            svc.solve(payload)
            spans = _spans(tracer, "service.request")
            assert len(spans) == 2
            outcomes = sorted(s.attrs["cache"] for s in spans)
            assert outcomes == ["hit", "miss"]
            miss = next(s for s in spans if s.attrs["cache"] == "miss")
            assert miss.attrs["tenant"] == "default"
            assert miss.attrs["status"] == 200
            assert "queue_wait_s" in miss.attrs
            assert "solve_s" in miss.attrs
        finally:
            svc.shutdown()

    def test_cache_bypass_always_solves(self, service):
        payload = solve_payload(cache=False)
        _, body1 = service.solve(payload)
        _, body2 = service.solve(payload)
        assert body1["cache"] == "bypass"
        assert body2["cache"] == "bypass"
        assert service.cache.stats()["hits"] == 0

    def test_different_algorithms_have_different_keys(self, service):
        _, body1 = service.solve(solve_payload())
        _, body2 = service.solve(
            solve_payload(algorithm="TwoListsGreedy")
        )
        assert body1["key"] != body2["key"]

    def test_persistent_cache_survives_service_restart(self, tmp_path):
        config = ServiceConfig(workers=1, cache_dir=str(tmp_path))
        first = SchedulingService(config)
        try:
            _, cold = first.solve(solve_payload())
            assert cold["cache"] == "miss"
        finally:
            first.shutdown()
        second = SchedulingService(config)
        try:
            _, warm = second.solve(solve_payload())
            # Memory tier is empty, the disk tier answers.
            assert warm["cache"] == "hit"
            assert warm["solution"] == cold["solution"]
            assert second.cache.stats()["disk_hits"] == 1
        finally:
            second.shutdown()


class TestAdmission:
    def test_quota_exhaustion_is_a_structured_rejection(self):
        svc = SchedulingService(
            ServiceConfig(workers=1, quota_rate=0.0, quota_burst=2.0)
        )
        try:
            payload = solve_payload(cache=False)
            assert svc.solve(payload)[0] == 200
            assert svc.solve(payload)[0] == 200
            status, body = svc.solve(payload)
            assert status == 429
            assert body["ok"] is False
            assert body["error"]["code"] == "quota_exhausted"
            assert "quota" in body["error"]["message"]
            # Never a traceback: the body is a JSON-safe dict.
            json.dumps(body)
        finally:
            svc.shutdown()

    def test_cache_hits_cost_no_tokens(self):
        svc = SchedulingService(
            ServiceConfig(workers=1, quota_rate=0.0, quota_burst=1.0)
        )
        try:
            payload = solve_payload()
            assert svc.solve(payload)[0] == 200  # spends the only token
            for _ in range(5):
                status, body = svc.solve(payload)
                assert (status, body["cache"]) == (200, "hit")
        finally:
            svc.shutdown()

    def test_concurrent_mixed_tenants_respect_quotas(self):
        """N concurrent requests from two tenants: the capped tenant is
        throttled to its burst, the others all complete."""
        svc = SchedulingService(
            ServiceConfig(
                workers=2,
                max_queue=64,
                quota_rate=0.0,
                quota_burst=50.0,
                tenant_quotas={"capped": (0.0, 3.0)},
            )
        )
        try:
            results = []
            lock = threading.Lock()

            def submit(tenant, seed):
                payload = solve_payload(
                    random_instance(np.random.default_rng(seed), num_jobs=3),
                    tenant=tenant,
                    cache=False,
                )
                status, body = svc.solve(payload, timeout=30.0)
                with lock:
                    results.append((tenant, status, body))

            threads = [
                threading.Thread(
                    target=submit,
                    args=("capped" if i % 2 else "open", i),
                )
                for i in range(16)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30.0)
            assert len(results) == 16

            open_statuses = [s for t, s, _ in results if t == "open"]
            capped_ok = [
                b for t, s, b in results if t == "capped" and s == 200
            ]
            capped_rejected = [
                b for t, s, b in results if t == "capped" and s == 429
            ]
            # Every accepted request completed with a real solution.
            assert open_statuses == [200] * 8
            for _, status, body in results:
                if status == 200:
                    assert body["solution"]["makespan"] is not None
            # The capped tenant got exactly its burst through.
            assert len(capped_ok) == 3
            assert len(capped_rejected) == 5
            for body in capped_rejected:
                assert body["error"]["code"] == "quota_exhausted"
            stats = svc.admission.stats()["tenants"]
            assert stats["capped"]["admitted"] == 3
            assert stats["capped"]["rejected"] == 5
            assert stats["open"]["admitted"] == 8
        finally:
            svc.shutdown()

    def test_queue_full_is_a_structured_rejection(self):
        svc = SchedulingService(
            ServiceConfig(
                workers=1,
                max_queue=1,
                quota_rate=0.0,
                quota_burst=50.0,
            )
        )
        try:
            release = threading.Event()
            running = threading.Event()
            inner = svc.dispatcher._solve_fn

            def blocking(work):
                running.set()
                release.wait(10.0)
                return inner(work)

            svc.dispatcher._solve_fn = blocking
            pending = [
                svc.begin_solve(
                    solve_payload(
                        random_instance(np.random.default_rng(0), num_jobs=3), cache=False
                    )
                )
            ]
            assert running.wait(5.0)  # worker busy; queue now fills
            pending.append(
                svc.begin_solve(
                    solve_payload(
                        random_instance(np.random.default_rng(1), num_jobs=3), cache=False
                    )
                )
            )
            status, body = svc.solve(
                solve_payload(
                    random_instance(np.random.default_rng(2), num_jobs=3), cache=False
                )
            )
            assert status == 429
            assert body["error"]["code"] == "queue_full"
            release.set()
            for p in pending:
                status, _ = p.result(timeout=10.0)
                assert status == 200
        finally:
            release.set()
            svc.shutdown()

    def test_deadline_expiry_is_a_structured_rejection(self):
        svc = SchedulingService(
            ServiceConfig(workers=1, quota_rate=0.0, quota_burst=50.0)
        )
        try:
            release = threading.Event()
            running = threading.Event()
            inner = svc.dispatcher._solve_fn

            def blocking(work):
                if not running.is_set():
                    running.set()
                    release.wait(10.0)
                return inner(work)

            svc.dispatcher._solve_fn = blocking
            blocker = svc.begin_solve(
                solve_payload(
                    random_instance(np.random.default_rng(0), num_jobs=3), cache=False
                )
            )
            assert running.wait(5.0)
            doomed = svc.begin_solve(
                solve_payload(
                    random_instance(np.random.default_rng(1), num_jobs=3),
                    cache=False,
                    deadline_s=0.05,
                )
            )
            import time

            time.sleep(0.15)
            release.set()
            status, body = doomed.result(timeout=10.0)
            assert status == 504
            assert body["error"]["code"] == "deadline_exceeded"
            assert blocker.result(timeout=10.0)[0] == 200
        finally:
            release.set()
            svc.shutdown()


class TestValidation:
    def test_bad_instance_is_a_400(self, service):
        status, body = service.solve({"instance": {"bogus": True}})
        assert status == 400
        assert body["error"]["code"] == "bad_request"
        assert "instance" in body["error"]["message"]

    def test_missing_instance_is_a_400(self, service):
        status, body = service.solve({})
        assert status == 400
        assert "instance" in body["error"]["message"]

    def test_unknown_algorithm_is_a_400(self, service):
        status, body = service.solve(solve_payload(algorithm="nope"))
        assert status == 400
        assert "algorithm" in body["error"]["message"]

    def test_negative_deadline_is_a_400(self, service):
        status, body = service.solve(solve_payload(deadline_s=-1.0))
        assert status == 400
        assert "deadline_s" in body["error"]["message"]

    def test_bad_config_is_rejected_on_construction(self):
        with pytest.raises(ValueError, match="workers"):
            ServiceConfig(workers=0)
        with pytest.raises(ValueError, match="quota_burst"):
            ServiceConfig(quota_burst=0.0)


class TestCampaign:
    def test_campaign_request_runs_and_summarizes(self, service):
        status, body = service.campaign(
            {"app": "nyx", "nodes": 2, "ppn": 2, "iterations": 3}
        )
        assert status == 200
        campaign = body["campaign"]
        assert campaign["iterations"] == 3
        assert campaign["solution"] == "ours"
        assert campaign["mean_relative_overhead"] >= 0.0
        assert campaign["spec_crc32c"]

    def test_campaign_matches_direct_run(self, service):
        """The service adds transport, not semantics: same spec, same
        modelled result as a direct run_campaign call."""
        from repro.engines import CampaignSpec, run_campaign

        status, body = service.campaign(
            {"app": "nyx", "nodes": 2, "ppn": 2, "iterations": 3, "seed": 5}
        )
        assert status == 200
        direct = run_campaign(
            CampaignSpec(app="nyx", nodes=2, ppn=2, iterations=3, seed=5)
        )
        direct.close()
        assert body["campaign"]["mean_relative_overhead"] == (
            pytest.approx(direct.result.mean_relative_overhead)
        )
        assert body["campaign"]["total_time"] == pytest.approx(
            direct.result.total_time
        )

    def test_campaign_journal_is_written_and_verifies(
        self, service, tmp_path
    ):
        from repro.durability import verify_journal

        journal = tmp_path / "svc.jsonl"
        status, body = service.campaign(
            {
                "app": "nyx",
                "nodes": 2,
                "ppn": 2,
                "iterations": 3,
                "journal": str(journal),
            }
        )
        assert status == 200
        assert journal.exists()
        report = verify_journal(journal)
        assert report.ok

    def test_unknown_campaign_field_is_a_400(self, service):
        status, body = service.campaign({"bogus": 1})
        assert status == 400
        assert "bogus" in body["error"]["message"]

    def test_bad_spec_value_is_a_400(self, service):
        status, body = service.campaign({"app": "doom3"})
        assert status == 400
        assert "app" in body["error"]["message"]


class TestShutdown:
    def test_draining_service_rejects_with_503(self):
        svc = SchedulingService(ServiceConfig(workers=1))
        svc.shutdown()
        status, body = svc.solve(solve_payload())
        assert status == 503
        assert body["error"]["code"] == "shutting_down"
        status, body = svc.campaign({"iterations": 1})
        assert status == 503

    def test_health_reports_draining(self):
        svc = SchedulingService(ServiceConfig(workers=1))
        breakers = {"engine": "closed", "disk_cache": "closed"}
        assert svc.health_payload() == {
            "ok": True,
            "draining": False,
            "breakers": breakers,
        }
        svc.shutdown()
        assert svc.health_payload() == {
            "ok": True,
            "draining": True,
            "breakers": breakers,
        }

    def test_status_payload_is_json_safe(self, service):
        service.solve(solve_payload())
        json.dumps(service.status_payload())


class TestEngineBreaker:
    """Degraded mode: a broken engine trips the breaker; memoized
    results keep flowing while new work is refused fast."""

    class FakeClock:
        def __init__(self):
            self.now = 0.0

        def __call__(self):
            return self.now

    def make_service(self, **overrides):
        from repro.resilience import CircuitBreaker

        kwargs = dict(workers=2, quota_rate=0.0, quota_burst=100.0)
        kwargs.update(overrides)
        svc = SchedulingService(ServiceConfig(**kwargs))
        # Only the breaker runs on the fake clock — the dispatcher
        # keeps real time, so solves still flow.
        clock = self.FakeClock()
        svc.engine_breaker = CircuitBreaker(
            "engine",
            failure_threshold=0.5,
            window=4,
            min_calls=2,
            cooldown_s=30.0,
            clock=clock,
        )
        return svc, clock

    def test_open_breaker_rejects_with_engine_unavailable(self):
        svc, clock = self.make_service()
        try:
            # Warm the cache before the engine "breaks".
            status, warm = svc.solve(solve_payload())
            assert status == 200
            for _ in range(2):
                svc.engine_breaker.record_failure()
            assert svc.engine_breaker.state == "open"

            # New (uncached) work is refused fast with a retry hint...
            status, body = svc.solve(
                solve_payload(random_instance(np.random.default_rng(5)))
            )
            assert status == 503
            assert body["error"]["code"] == "engine_unavailable"
            assert body["error"]["retry_after_s"] == pytest.approx(30.0)
            # ...while the memoized request is still served.
            status, body = svc.solve(solve_payload())
            assert status == 200 and body["cache"] == "hit"
            assert svc.health_payload()["breakers"]["engine"] == "open"
        finally:
            svc.shutdown()

    def test_worker_failures_trip_the_breaker(self):
        svc, clock = self.make_service()
        try:
            svc.dispatcher._solve_fn = _always_failing_solve(svc)
            for i in range(2):
                status, body = svc.solve(
                    solve_payload(
                        random_instance(np.random.default_rng(10 + i))
                    )
                )
                assert status == 500
            assert svc.engine_breaker.state == "open"
            assert svc.status_payload()["breakers"]["engine"]["opens"] == 1
        finally:
            svc.shutdown()

    def test_probe_closes_the_breaker_after_cooldown(self):
        svc, clock = self.make_service()
        try:
            for _ in range(2):
                svc.engine_breaker.record_failure()
            assert svc.engine_breaker.state == "open"
            clock.now += 30.0  # cooldown elapses: next call is the probe
            status, body = svc.solve(
                solve_payload(random_instance(np.random.default_rng(6)))
            )
            assert status == 200
            assert svc.engine_breaker.state == "closed"
        finally:
            svc.shutdown()

    def test_campaign_refused_while_engine_is_open(self):
        svc, clock = self.make_service()
        try:
            for _ in range(2):
                svc.engine_breaker.record_failure()
            status, body = svc.campaign(
                {"app": "nyx", "nodes": 2, "ppn": 2, "iterations": 2}
            )
            assert status == 503
            assert body["error"]["code"] == "engine_unavailable"
        finally:
            svc.shutdown()


def _always_failing_solve(svc):
    def failing(work):
        svc.chaos.hit("mid-dispatch")
        if not svc.engine_breaker.allow():
            from repro.service import EngineUnavailableError

            raise EngineUnavailableError(svc.engine_breaker.retry_after_s())
        svc.engine_breaker.record_failure()
        raise RuntimeError("engine exploded")

    return failing
