"""The watchdog in isolation: fake children, real processes, no solver.

Children here are tiny ``python -c`` scripts, so crash loops, clean
exits, and hangs are all fast and deterministic.  The full supervised
server with a real crash is exercised in ``test_chaos.py``.
"""

import sys
import threading
import time

import pytest

from repro.resilience import RetryPolicy
from repro.service import Watchdog

FAST_BACKOFF = RetryPolicy(
    max_attempts=10, base_backoff_s=0.01, backoff_multiplier=1.0,
    jitter_frac=0.0,
)


def make_watchdog(child_code, **overrides):
    events = []
    kwargs = dict(
        probe_interval_s=0.05,
        hang_timeout_s=5.0,
        max_restarts=2,
        backoff=FAST_BACKOFF,
        on_event=events.append,
    )
    kwargs.update(overrides)
    watchdog = Watchdog([sys.executable, "-c", child_code], **kwargs)
    return watchdog, events


def event_kinds(events):
    return [e["event"] for e in events]


class TestExitHandling:
    def test_clean_exit_ends_supervision_with_zero(self):
        watchdog, events = make_watchdog("raise SystemExit(0)")
        assert watchdog.run() == 0
        assert watchdog.restarts == 0
        assert event_kinds(events) == ["spawned", "clean_exit"]

    def test_crashing_child_restarts_until_budget(self):
        watchdog, events = make_watchdog(
            "raise SystemExit(7)", max_restarts=2
        )
        assert watchdog.run() == 1
        assert watchdog.restarts == 2
        kinds = event_kinds(events)
        assert kinds.count("spawned") == 3  # initial + 2 restarts
        assert kinds.count("child_died") == 3
        died = [e for e in events if e["event"] == "child_died"]
        assert all(e["returncode"] == 7 for e in died)

    def test_zero_restarts_means_one_chance(self):
        watchdog, events = make_watchdog(
            "raise SystemExit(3)", max_restarts=0
        )
        assert watchdog.run() == 1
        assert event_kinds(events).count("spawned") == 1

    def test_recovery_after_one_crash(self, tmp_path):
        # The child crashes only while the marker file exists —
        # the first run consumes it, the second exits cleanly.
        marker = tmp_path / "crash-once"
        marker.write_text("")
        code = (
            "import os, sys\n"
            f"p = {str(marker)!r}\n"
            "if os.path.exists(p):\n"
            "    os.unlink(p)\n"
            "    sys.exit(9)\n"
            "sys.exit(0)\n"
        )
        watchdog, events = make_watchdog(code, max_restarts=5)
        assert watchdog.run() == 0
        assert watchdog.restarts == 1
        kinds = event_kinds(events)
        assert kinds[-1] == "clean_exit"
        assert "restarting" in kinds


class TestHangDetection:
    def test_stalled_heartbeat_gets_the_child_killed(self, tmp_path):
        # The child writes one heartbeat then sleeps forever: after
        # hang_timeout_s of heartbeat silence the watchdog kills it.
        heartbeat = tmp_path / "heartbeat"
        code = (
            "import time\n"
            f"open({str(heartbeat)!r}, 'w').write('alive')\n"
            "time.sleep(600)\n"
        )
        # port=1: health probes fail (connection refused), so the
        # heartbeat file is the only liveness signal.
        watchdog, events = make_watchdog(
            code,
            heartbeat_path=str(heartbeat),
            port=1,
            hang_timeout_s=0.4,
            max_restarts=0,
        )
        t0 = time.monotonic()
        assert watchdog.run() == 1
        assert time.monotonic() - t0 < 30.0
        died = [e for e in events if e["event"] == "child_died"]
        assert [e["why"] for e in died] == ["hang"]
        assert any(e["event"] == "hang_detected" for e in events)

    def test_summary_on_exhausted_budget(self, capsys):
        watchdog, _ = make_watchdog(
            "raise SystemExit(5)", on_event=None, max_restarts=1
        )
        assert watchdog.run() == 1
        err = capsys.readouterr().err
        assert "restart_budget_exhausted" in err
        assert '"last_returncode": 5' in err


class TestStop:
    def test_request_stop_terminates_child_and_returns_zero(self):
        # A child that ignores nothing: SIGTERM kills it promptly.
        watchdog, events = make_watchdog(
            "import time; time.sleep(600)", hang_timeout_s=30.0
        )
        result = {}

        def run():
            result["rc"] = watchdog.run()

        runner = threading.Thread(target=run, daemon=True)
        runner.start()
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline and not events:
            time.sleep(0.01)
        assert events and events[0]["event"] == "spawned"
        watchdog.request_stop()
        runner.join(timeout=30.0)
        assert not runner.is_alive()
        assert result["rc"] == 0
        assert event_kinds(events)[-1] == "stopped"


class TestAddressParsing:
    def test_listening_line_updates_probe_target(self):
        watchdog, _ = make_watchdog(
            "print('repro service listening on http://127.0.0.1:45678',"
            " flush=True)"
        )
        assert watchdog.run() == 0
        # The forwarding thread races run()'s return; give it a moment.
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline and watchdog.port != 45678:
            time.sleep(0.01)
        assert watchdog.port == 45678
        assert watchdog.host == "127.0.0.1"


class TestValidation:
    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError, match="probe_interval_s"):
            Watchdog(["true"], probe_interval_s=0.0)
        with pytest.raises(ValueError, match="hang_timeout_s"):
            Watchdog(["true"], hang_timeout_s=0.0)
        with pytest.raises(ValueError, match="max_restarts"):
            Watchdog(["true"], max_restarts=-1)
