"""Tests for the event kernel and cluster topology."""

import pytest

from repro.simulator import ClusterSpec, Simulation


class TestSimulation:
    def test_events_run_in_time_order(self):
        sim = Simulation()
        order = []
        sim.at(5.0, lambda: order.append("b"))
        sim.at(1.0, lambda: order.append("a"))
        sim.at(9.0, lambda: order.append("c"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_clock_advances(self):
        sim = Simulation()
        seen = []
        sim.at(2.5, lambda: seen.append(sim.now))
        assert sim.run() == 2.5
        assert seen == [2.5]

    def test_fifo_at_equal_times(self):
        sim = Simulation()
        order = []
        sim.at(1.0, lambda: order.append(1))
        sim.at(1.0, lambda: order.append(2))
        sim.run()
        assert order == [1, 2]

    def test_callbacks_can_schedule_more(self):
        sim = Simulation()
        seen = []

        def first():
            sim.after(1.0, lambda: seen.append(sim.now))

        sim.at(1.0, first)
        sim.run()
        assert seen == [2.0]

    def test_until_stops_early(self):
        sim = Simulation()
        seen = []
        sim.at(1.0, lambda: seen.append("early"))
        sim.at(10.0, lambda: seen.append("late"))
        sim.run(until=5.0)
        assert seen == ["early"]
        assert sim.now == 5.0
        assert sim.pending == 1

    def test_past_scheduling_rejected(self):
        sim = Simulation()
        sim.at(3.0, lambda: sim.at(1.0, lambda: None))
        with pytest.raises(ValueError):
            sim.run()

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulation().after(-1.0, lambda: None)

    def test_empty_run(self):
        assert Simulation().run() == 0.0


class TestClusterSpec:
    def test_totals(self):
        spec = ClusterSpec(num_nodes=16, processes_per_node=4)
        assert spec.total_processes == 64

    def test_node_of(self):
        spec = ClusterSpec(num_nodes=4, processes_per_node=4)
        assert spec.node_of(0) == 0
        assert spec.node_of(5) == 1
        assert spec.node_of(15) == 3

    def test_local_rank(self):
        spec = ClusterSpec(num_nodes=4, processes_per_node=4)
        assert spec.local_rank(5) == 1

    def test_ranks_of_node(self):
        spec = ClusterSpec(num_nodes=2, processes_per_node=3)
        assert spec.ranks_of_node(1) == [3, 4, 5]

    def test_rank_out_of_range(self):
        spec = ClusterSpec(num_nodes=2, processes_per_node=2)
        with pytest.raises(ValueError):
            spec.node_of(4)
        with pytest.raises(ValueError):
            spec.ranks_of_node(2)

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            ClusterSpec(num_nodes=0, processes_per_node=1)


class TestRecurringEvents:
    def test_every_fires_periodically(self):
        sim = Simulation()
        times = []
        sim.every(2.0, lambda: times.append(sim.now), until=10.0)
        sim.run()
        assert times == [2.0, 4.0, 6.0, 8.0, 10.0]

    def test_every_with_custom_start(self):
        sim = Simulation()
        times = []
        sim.every(3.0, lambda: times.append(sim.now), until=9.0, start=1.0)
        sim.run()
        assert times == [1.0, 4.0, 7.0]

    def test_every_without_until_runs_with_run_until(self):
        sim = Simulation()
        count = [0]
        sim.every(1.0, lambda: count.__setitem__(0, count[0] + 1))
        sim.run(until=5.5)
        assert count[0] == 5

    def test_invalid_interval(self):
        import pytest

        with pytest.raises(ValueError):
            Simulation().every(0.0, lambda: None)

    def test_composes_with_one_shot_events(self):
        sim = Simulation()
        order = []
        sim.every(2.0, lambda: order.append("tick"), until=4.0)
        sim.at(3.0, lambda: order.append("once"))
        sim.run()
        assert order == ["tick", "once", "tick"]
