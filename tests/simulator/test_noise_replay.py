"""Tests for noise models and schedule replay."""

import pytest

from repro.core import ext_johnson_backfill
from repro.simulator import (
    ZERO_NOISE,
    NoiseModel,
    execute_schedule,
    execution_to_trace,
    render_gantt,
    schedule_to_trace,
)
from tests.conftest import figure1_instance


def _zero_actuals(instance):
    return ZERO_NOISE.actual_durations(
        instance,
        tuple(j.compression_time for j in instance.jobs),
        tuple(j.io_time for j in instance.jobs),
    )


class TestNoiseModel:
    def test_zero_noise_is_identity(self, figure1):
        actuals = _zero_actuals(figure1)
        assert actuals.length == figure1.length
        assert actuals.main_obstacles == figure1.main_obstacles
        assert actuals.compression_times == tuple(
            j.compression_time for j in figure1.jobs
        )

    def test_noise_changes_values(self, figure1):
        model = NoiseModel(seed=7)
        actuals = model.actual_durations(
            figure1,
            tuple(j.compression_time for j in figure1.jobs),
            tuple(j.io_time for j in figure1.jobs),
        )
        assert actuals.length != figure1.length

    def test_perturbed_obstacles_stay_ordered(self, figure1):
        model = NoiseModel(seed=3, interval_sigma_frac=0.2)
        for _ in range(20):
            actuals = model.actual_durations(figure1, (), ())
            obs = actuals.main_obstacles
            for a, b in zip(obs, obs[1:]):
                assert a.end <= b.start + 1e-9

    def test_durations_stay_positive(self):
        model = NoiseModel(seed=1, io_sigma_frac=3.0)  # absurd sigma
        for _ in range(100):
            assert model.perturb_io_time(1.0) > 0.0

    def test_ratio_perturbation_centred(self):
        model = NoiseModel(seed=5)
        draws = [model.perturb_ratio(16.0) for _ in range(500)]
        mean = sum(draws) / len(draws)
        assert 15.0 < mean < 17.0

    def test_determinism_per_seed(self, figure1):
        a = NoiseModel(seed=42).actual_durations(figure1, (1.0,), (1.0,))
        b = NoiseModel(seed=42).actual_durations(figure1, (1.0,), (1.0,))
        assert a == b


class TestReplay:
    def test_zero_noise_matches_plan(self, figure1):
        schedule = ext_johnson_backfill(figure1)
        result = execute_schedule(schedule, _zero_actuals(figure1))
        for j, planned in schedule.compression.items():
            assert result.compression[j].start == pytest.approx(
                planned.start
            )
        for j, planned in schedule.io.items():
            assert result.io[j].start == pytest.approx(planned.start)
        assert result.overhead == pytest.approx(schedule.overhead)

    def test_late_obstacle_delays_compression(self, figure1):
        schedule = ext_johnson_backfill(figure1)
        actuals = _zero_actuals(figure1)
        # Stretch the first main obstacle (Y1 planned [3,4] -> [3,6]).
        from repro.core import Interval

        stretched = (
            Interval(3.0, 6.0),
            actuals.main_obstacles[1].shifted(2.0),
        )
        actuals = type(actuals)(
            length=actuals.length,
            main_obstacles=stretched,
            background_obstacles=actuals.background_obstacles,
            compression_times=actuals.compression_times,
            io_times=actuals.io_times,
        )
        result = execute_schedule(schedule, actuals)
        # Job 1 was planned at [4, 6]; it must now start at >= 6.
        assert result.compression[1].start >= 6.0 - 1e-9

    def test_io_waits_for_actual_compression(self, figure1):
        schedule = ext_johnson_backfill(figure1)
        actuals = _zero_actuals(figure1)
        slowed = tuple(c * 3.0 for c in actuals.compression_times)
        actuals = type(actuals)(
            length=actuals.length,
            main_obstacles=actuals.main_obstacles,
            background_obstacles=actuals.background_obstacles,
            compression_times=slowed,
            io_times=actuals.io_times,
        )
        result = execute_schedule(schedule, actuals)
        for j in result.io:
            assert (
                result.io[j].start >= result.compression[j].end - 1e-9
            )

    def test_overhead_nonnegative_under_noise(self, figure1):
        schedule = ext_johnson_backfill(figure1)
        model = NoiseModel(seed=11)
        for _ in range(30):
            actuals = model.actual_durations(
                figure1,
                tuple(j.compression_time for j in figure1.jobs),
                tuple(j.io_time for j in figure1.jobs),
            )
            result = execute_schedule(schedule, actuals)
            assert result.overhead >= 0.0
            assert result.relative_overhead >= 0.0

    def test_threads_never_overlap_themselves(self, figure1):
        schedule = ext_johnson_backfill(figure1)
        model = NoiseModel(seed=13, interval_sigma_frac=0.05)
        actuals = model.actual_durations(
            figure1,
            tuple(j.compression_time for j in figure1.jobs),
            tuple(j.io_time for j in figure1.jobs),
        )
        result = execute_schedule(schedule, actuals)
        main = sorted(
            list(result.compression.values())
            + list(result.main_obstacles),
            key=lambda iv: iv.start,
        )
        for a, b in zip(main, main[1:]):
            assert a.end <= b.start + 1e-9


class TestTrace:
    def test_schedule_trace_counts(self, figure1):
        schedule = ext_johnson_backfill(figure1)
        events = schedule_to_trace(schedule)
        assert len(events) == 2 + 1 + 4 + 4  # Y, G, R, B

    def test_execution_trace_counts(self, figure1):
        schedule = ext_johnson_backfill(figure1)
        result = execute_schedule(schedule, _zero_actuals(figure1))
        assert len(execution_to_trace(result)) == 11

    def test_gantt_renders_both_threads(self, figure1):
        schedule = ext_johnson_backfill(figure1)
        text = render_gantt(schedule_to_trace(schedule))
        assert "main" in text
        assert "background" in text
        assert "R" in text and "B" in text and "Y" in text

    def test_empty_trace(self):
        assert render_gantt([]) == "(empty trace)"
