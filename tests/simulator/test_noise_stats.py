"""Statistical tests for the Section 5.4.1 noise models."""

import numpy as np
import pytest

from repro.core import Interval, Job, ProblemInstance
from repro.simulator import NoiseModel


def _instance():
    return ProblemInstance(
        begin=0.0,
        end=10.0,
        jobs=(Job(0, 1.0, 1.0),),
        main_obstacles=(Interval(2.0, 3.0), Interval(5.0, 6.0)),
        background_obstacles=(Interval(4.0, 5.0),),
    )


class TestSigmaCalibration:
    def _draws(self, fn, n=3000):
        return np.array([fn() for _ in range(n)])

    def test_compression_sigma(self):
        model = NoiseModel(seed=5)
        draws = self._draws(lambda: model.perturb_compression_time(2.0))
        assert draws.mean() == pytest.approx(2.0, rel=0.02)
        assert draws.std() == pytest.approx(0.05 * 2.0, rel=0.1)

    def test_io_sigma(self):
        model = NoiseModel(seed=5)
        draws = self._draws(lambda: model.perturb_io_time(4.0))
        assert draws.std() == pytest.approx(0.05 * 4.0, rel=0.1)

    def test_ratio_sigma(self):
        model = NoiseModel(seed=5)
        draws = self._draws(lambda: model.perturb_ratio(16.0))
        assert draws.mean() == pytest.approx(16.0, rel=0.02)
        assert draws.std() == pytest.approx(1.6, rel=0.1)

    def test_interval_sigma_scales_with_length(self):
        inst = _instance()
        model = NoiseModel(seed=5)
        starts = []
        for _ in range(2000):
            actuals = model.actual_durations(inst, (1.0,), (1.0,))
            starts.append(actuals.main_obstacles[0].start)
        starts = np.array(starts)
        # sigma = 0.01 * T_n = 0.1; clamping at the cursor trims little
        # for the first obstacle at t=2.
        assert starts.std() == pytest.approx(0.1, rel=0.15)
        assert starts.mean() == pytest.approx(2.0, abs=0.02)

    def test_length_noise(self):
        inst = _instance()
        model = NoiseModel(seed=6)
        lengths = np.array(
            [
                model.actual_durations(inst, (), ()).length
                for _ in range(2000)
            ]
        )
        assert lengths.mean() == pytest.approx(10.0, rel=0.01)
        assert lengths.std() == pytest.approx(0.1, rel=0.15)


class TestStructuralInvariants:
    def test_obstacle_count_preserved(self):
        inst = _instance()
        model = NoiseModel(seed=7, interval_sigma_frac=0.05)
        for _ in range(200):
            actuals = model.actual_durations(inst, (1.0,), (1.0,))
            assert len(actuals.main_obstacles) == 2
            assert len(actuals.background_obstacles) == 1

    def test_durations_never_collapse(self):
        inst = _instance()
        model = NoiseModel(seed=8, interval_sigma_frac=0.5)  # extreme
        for _ in range(200):
            actuals = model.actual_durations(inst, (1.0,), (1.0,))
            for obs in actuals.main_obstacles:
                assert obs.duration > 0.0

    def test_task_count_matches_inputs(self):
        inst = _instance()
        model = NoiseModel(seed=9)
        actuals = model.actual_durations(
            inst, (1.0, 2.0, 3.0), (0.5, 0.5)
        )
        assert len(actuals.compression_times) == 3
        assert len(actuals.io_times) == 2
