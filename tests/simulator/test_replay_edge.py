"""Edge cases in schedule replay."""

import pytest

from repro.core import (
    Interval,
    Job,
    ProblemInstance,
    ext_johnson_backfill,
    generation_list_schedule,
)
from repro.simulator import ActualDurations, ZERO_NOISE, execute_schedule


def _zero_actuals(instance):
    return ZERO_NOISE.actual_durations(
        instance,
        tuple(j.compression_time for j in instance.jobs),
        tuple(j.io_time for j in instance.jobs),
    )


class TestReplayEdges:
    def test_empty_schedule(self):
        inst = ProblemInstance(begin=0.0, end=5.0, jobs=())
        schedule = ext_johnson_backfill(inst)
        result = execute_schedule(schedule, _zero_actuals(inst))
        assert result.io_makespan == 0.0
        assert result.overall_time == pytest.approx(5.0)

    def test_io_release_respected_in_replay(self):
        inst = ProblemInstance(
            begin=0.0,
            end=10.0,
            jobs=(Job(0, 0.0, 1.0, io_release=6.0),),
        )
        schedule = ext_johnson_backfill(inst)
        result = execute_schedule(schedule, _zero_actuals(inst))
        assert result.io[0].start >= 6.0

    def test_shrunken_obstacles_pull_tasks_earlier(self):
        inst = ProblemInstance(
            begin=0.0,
            end=10.0,
            jobs=(Job(0, 2.0, 1.0),),
            main_obstacles=(Interval(0.0, 5.0),),
        )
        schedule = generation_list_schedule(inst)
        assert schedule.compression[0].start == pytest.approx(5.0)
        # Actual obstacle finished at 2.0 instead of 5.0; the replay lets
        # the queued compression start right after it.
        actuals = ActualDurations(
            length=10.0,
            main_obstacles=(Interval(0.0, 2.0),),
            background_obstacles=(),
            compression_times=(2.0,),
            io_times=(1.0,),
        )
        result = execute_schedule(schedule, actuals)
        assert result.compression[0].start == pytest.approx(2.0)

    def test_obstacle_count_mismatch_is_an_error(self):
        inst = ProblemInstance(
            begin=0.0,
            end=10.0,
            jobs=(Job(0, 1.0, 1.0),),
            main_obstacles=(Interval(1.0, 2.0),),
        )
        schedule = ext_johnson_backfill(inst)
        actuals = ActualDurations(
            length=10.0,
            main_obstacles=(),  # planned one, delivered none
            background_obstacles=(),
            compression_times=(1.0,),
            io_times=(1.0,),
        )
        with pytest.raises(IndexError):
            execute_schedule(schedule, actuals)

    def test_overall_time_includes_trailing_obstacle(self):
        inst = ProblemInstance(
            begin=0.0,
            end=4.0,
            jobs=(Job(0, 0.5, 0.5),),
            main_obstacles=(Interval(3.0, 4.0),),
        )
        schedule = ext_johnson_backfill(inst)
        actuals = ActualDurations(
            length=4.0,
            main_obstacles=(Interval(3.0, 6.0),),  # ran long
            background_obstacles=(),
            compression_times=(0.5,),
            io_times=(0.5,),
        )
        result = execute_schedule(schedule, actuals)
        assert result.overall_time >= 6.0

    def test_relative_overhead_zero_computation(self):
        inst = ProblemInstance(begin=0.0, end=0.0, jobs=())
        schedule = ext_johnson_backfill(inst)
        actuals = ActualDurations(
            length=0.0,
            main_obstacles=(),
            background_obstacles=(),
            compression_times=(),
            io_times=(),
        )
        result = execute_schedule(schedule, actuals)
        assert result.relative_overhead == 0.0

    def test_overflow_trace_glyph(self):
        from repro.simulator import execution_to_trace, render_gantt

        inst = ProblemInstance(
            begin=0.0, end=4.0, jobs=(Job(0, 1.0, 1.0),)
        )
        schedule = ext_johnson_backfill(inst)
        result = execute_schedule(schedule, _zero_actuals(inst))
        result.extra_io = (Interval(5.0, 6.0),)
        events = execution_to_trace(result)
        assert any(e.kind == "overflow" for e in events)
        assert "O" in render_gantt(events)
