"""Tests for trace CSV/JSON export."""

import csv
import io
import json

from repro.core import ext_johnson_backfill
from repro.simulator import (
    schedule_to_trace,
    trace_to_csv,
    trace_to_json,
)


class TestTraceExport:
    def test_csv_round_trip(self, figure1):
        events = schedule_to_trace(ext_johnson_backfill(figure1))
        text = trace_to_csv(events)
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == len(events)
        for row, event in zip(rows, events):
            assert row["resource"] == event.resource
            assert float(row["start"]) == event.start
            assert float(row["end"]) == event.end

    def test_csv_header(self, figure1):
        events = schedule_to_trace(ext_johnson_backfill(figure1))
        assert trace_to_csv(events).startswith(
            "resource,kind,label,start,end"
        )

    def test_json_round_trip(self, figure1):
        events = schedule_to_trace(ext_johnson_backfill(figure1))
        decoded = json.loads(trace_to_json(events))
        assert len(decoded) == len(events)
        assert decoded[0]["kind"] in {"compute", "core", "compression", "io"}

    def test_empty_traces(self):
        assert trace_to_csv([]) == "resource,kind,label,start,end\n"
        assert json.loads(trace_to_json([])) == []
