"""End-to-end: a traced campaign covers every phase for every rank."""

import json

from repro.apps import NyxModel
from repro.framework import CampaignRunner, ours_config
from repro.simulator import ClusterSpec
from repro.telemetry import Tracer, read_jsonl


def _run_traced(iterations=3, ppn=2):
    tracer = Tracer()
    runner = CampaignRunner(
        NyxModel(seed=1),
        ClusterSpec(num_nodes=1, processes_per_node=ppn),
        ours_config(),
        solution="ours",
        seed=1,
        tracer=tracer,
    )
    result = runner.run(iterations)
    return tracer, result


class TestCampaignTrace:
    def test_all_phases_for_every_rank(self):
        tracer, _ = _run_traced(ppn=2)
        spans = tracer.recorder.spans
        for rank in range(2):
            mine = [s for s in spans if s.attrs.get("rank") == rank]
            kinds = {s.name for s in mine}
            assert "compute" in kinds
            assert {"compress.planned", "compress.actual"} <= kinds
            assert {"write.planned", "write.actual"} <= kinds
            assert "dump" in kinds

    def test_dump_spans_carry_prediction_error_attrs(self):
        tracer, _ = _run_traced()
        dumps = [s for s in tracer.recorder.spans if s.name == "dump"]
        assert dumps
        for span in dumps:
            assert "size_rel_error" in span.attrs
            assert "length_error" in span.attrs
            assert "makespan_error" in span.attrs
            assert span.attrs["relative_overhead"] >= 0.0

    def test_iteration_spans_advance_on_simulated_clock(self):
        tracer, result = _run_traced(iterations=4)
        iterations = [
            s for s in tracer.recorder.spans if s.name == "iteration"
        ]
        assert len(iterations) == 4
        assert all(s.t1 >= s.t0 for s in iterations)
        # Consecutive iterations abut on the virtual clock.
        for before, after in zip(iterations, iterations[1:]):
            assert after.t0 == before.t1

    def test_jsonl_export_is_valid_and_round_trips(self, tmp_path):
        tracer, _ = _run_traced()
        path = tracer.recorder.write_jsonl(tmp_path / "campaign.jsonl")
        lines = path.read_text().splitlines()
        assert lines
        for line in lines:
            json.loads(line)
        restored = read_jsonl(path)
        assert len(restored.spans) == len(tracer.recorder.spans)
        assert restored.counters == tracer.recorder.counters

    def test_metrics_aggregated_into_result(self):
        tracer, result = _run_traced(iterations=4, ppn=2)
        assert result.metrics["iterations"] == 4.0
        assert result.metrics["dumps"] == 3.0
        assert "overhead.rank0.mean" in result.metrics
        assert "overhead.rank1.mean" in result.metrics
        assert (
            tracer.recorder.gauges["campaign.mean_relative_overhead"]
            == result.metrics["mean_relative_overhead"]
        )

    def test_untraced_campaign_still_fills_metrics(self):
        runner = CampaignRunner(
            NyxModel(seed=1),
            ClusterSpec(num_nodes=1, processes_per_node=2),
            ours_config(),
        )
        result = runner.run(3)
        assert result.metrics["dumps"] == 2.0
        assert result.metrics["mean_relative_overhead"] >= 0.0
