"""Gantt rendering: golden layout and Figure 1 reproduction."""

from repro.core import DEFAULT_ALGORITHM, solve
from repro.telemetry import (
    Recorder,
    SpanRecord,
    Tracer,
    render_gantt,
)
from tests.conftest import figure1_instance


class TestGolden:
    def _recorder(self):
        recorder = Recorder()
        recorder.add(SpanRecord("core", "background", None, 4.0, 5.0))
        recorder.add(SpanRecord("write.actual", "background", 0, 1.0, 3.0))
        recorder.add(SpanRecord("compute", "main", None, 3.0, 4.0))
        recorder.add(SpanRecord("compute", "main", None, 6.0, 7.0))
        recorder.add(SpanRecord("compute", "main", None, 11.0, 12.0))
        recorder.add(SpanRecord("compress.actual", "main", 0, 0.0, 1.0))
        return recorder

    def test_exact_layout(self):
        # width 13 over a [0, 12] span puts one column per time unit.
        chart = render_gantt(
            self._recorder().spans, width=13, legend=False
        )
        expected = "\n".join(
            [
                "background |" + " BB G        " + "|",
                "main       |" + "R  Y  Y    Y " + "|",
                "           |" + "t=0.00" + "   t=12.00" + "|",
            ]
        )
        assert chart == expected

    def test_legend_appended(self):
        chart = render_gantt(self._recorder().spans, width=13)
        assert chart.splitlines()[-1].strip() == (
            "Y=compute  G=core  R=compression  B=write  O=overflow"
        )

    def test_machineless_spans_skipped(self):
        recorder = self._recorder()
        recorder.add(SpanRecord("dump.schedule", t0=0.0, t1=99.0))
        chart = render_gantt(recorder.spans, width=13, legend=False)
        # The wall-clock span neither adds a row nor stretches the axis.
        assert "t=12.00" in chart
        assert len(chart.splitlines()) == 3

    def test_no_machine_spans(self):
        assert render_gantt([]) == "(no machine spans)"


class TestFigure1:
    def test_reproduces_figure1_layout(self):
        """The traced default schedule re-draws Figure 1: obstacles and
        tasks land in the same columns the schedule dictates."""
        instance = figure1_instance()
        tracer = Tracer()
        result = solve(instance, DEFAULT_ALGORITHM, tracer=tracer)
        width = 73  # one column per 1/6 time unit over [0, 12]
        chart = render_gantt(tracer.recorder.spans, width=width)
        rows = {
            line.split("|")[0].strip(): line.split("|")[1]
            for line in chart.splitlines()[:2]
        }
        scale = (width - 1) / instance.length

        def mid_col(iv) -> int:
            return int((iv.start + iv.end) / 2 * scale)

        # Main thread: every obstacle is a Y at its midpoint, every
        # scheduled compression task an R at its midpoint.
        for obs in instance.main_obstacles:
            assert rows["main"][mid_col(obs)] == "Y"
        for iv in result.schedule.compression.values():
            assert rows["main"][mid_col(iv)] == "R"
        # Background thread: the core obstacle is a G, writes are Bs.
        for obs in instance.background_obstacles:
            assert rows["background"][mid_col(obs)] == "G"
        for iv in result.schedule.io.values():
            assert rows["background"][mid_col(iv)] == "B"

    def test_round_trip_through_jsonl_renders_identically(self):
        from repro.telemetry import read_jsonl

        tracer = Tracer()
        solve(figure1_instance(), tracer=tracer)
        direct = render_gantt(tracer.recorder.spans)
        restored = read_jsonl(tracer.recorder.to_jsonl())
        assert render_gantt(restored.spans) == direct
