"""Recorder ordering, thread safety, and JSON-lines round-trip."""

import json
import threading

from repro.telemetry import (
    EventRecord,
    Recorder,
    SpanRecord,
    read_jsonl,
)


class TestOrdering:
    def test_records_keep_arrival_order(self):
        recorder = Recorder()
        recorder.add(SpanRecord("a", t0=5.0, t1=6.0))
        recorder.add(EventRecord("b", t=1.0))
        recorder.add(SpanRecord("c", t0=0.0, t1=2.0))
        assert [r.name for r in recorder.records] == ["a", "b", "c"]

    def test_spans_and_events_filter_but_preserve_order(self):
        recorder = Recorder()
        for i in range(4):
            recorder.add(SpanRecord(f"s{i}", t0=float(i), t1=float(i)))
            recorder.add(EventRecord(f"e{i}", t=float(i)))
        assert [s.name for s in recorder.spans] == ["s0", "s1", "s2", "s3"]
        assert [e.name for e in recorder.events] == ["e0", "e1", "e2", "e3"]

    def test_threaded_appends_all_arrive(self):
        recorder = Recorder()

        def worker(tag):
            for i in range(200):
                recorder.add(SpanRecord(f"{tag}.{i}"))
                recorder.counter("total").inc()

        threads = [
            threading.Thread(target=worker, args=(t,)) for t in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(recorder.records) == 8 * 200
        assert recorder.counters["total"] == 8 * 200

    def test_clear(self):
        recorder = Recorder()
        recorder.add(SpanRecord("a"))
        recorder.counter("c").inc()
        recorder.gauge("g").set(2.0)
        recorder.clear()
        assert recorder.records == ()
        assert recorder.counters == {}
        assert recorder.gauges == {}


class TestJsonl:
    def _populated(self):
        recorder = Recorder()
        recorder.add(
            SpanRecord(
                "compress.actual",
                machine="main",
                job=3,
                t0=1.5,
                t1=2.25,
                attrs={"rank": 1, "iteration": 4},
            )
        )
        recorder.add(
            EventRecord("fs.write", t=2.5, attrs={"nbytes": 1024})
        )
        recorder.counter("fs.bytes").inc(1024)
        recorder.gauge("campaign.mean_relative_overhead").set(0.25)
        return recorder

    def test_every_line_is_json(self):
        text = self._populated().to_jsonl()
        lines = text.splitlines()
        assert len(lines) == 4
        for line in lines:
            json.loads(line)

    def test_round_trip_preserves_records_and_metrics(self):
        original = self._populated()
        restored = read_jsonl(original.to_jsonl())
        assert restored.spans == original.spans
        assert restored.events == original.events
        assert restored.counters == original.counters
        assert restored.gauges == original.gauges

    def test_round_trip_via_file(self, tmp_path):
        original = self._populated()
        path = original.write_jsonl(tmp_path / "trace.jsonl")
        restored = read_jsonl(path)
        assert restored.records == original.records

    def test_numpy_attrs_serialize(self):
        import numpy as np

        recorder = Recorder()
        recorder.add(
            SpanRecord("dump", attrs={"x": np.float64(0.5), "n": np.int64(3)})
        )
        data = json.loads(recorder.to_jsonl())
        assert data["attrs"] == {"x": 0.5, "n": 3}

    def test_empty_recorder_round_trips(self):
        assert Recorder().to_jsonl() == ""
        assert read_jsonl("\n").records == ()

    def test_unknown_type_raises(self):
        import pytest

        with pytest.raises(ValueError, match="unknown record type"):
            read_jsonl('{"type": "mystery"}\n')

    def test_span_duration(self):
        span = SpanRecord("a", t0=1.0, t1=3.5)
        assert span.duration == 2.5
