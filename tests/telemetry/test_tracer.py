"""Tracer/NullTracer behaviour: no-op guarantees, binding, timing."""

import pytest

from repro.telemetry import (
    NULL_TRACER,
    Counter,
    Gauge,
    NullTracer,
    Tracer,
)


class TestNullTracer:
    def test_is_disabled(self):
        assert NULL_TRACER.enabled is False

    def test_all_emitters_are_noops(self):
        tracer = NullTracer()
        tracer.span("a", "main", 1, 0.0, 1.0, rank=2)
        tracer.event("b", t=1.0)
        with tracer.timed("c", machine="main"):
            pass
        # Nothing observable: no recorder attribute at all.
        assert not hasattr(tracer, "recorder")

    def test_metrics_are_shared_nulls(self):
        tracer = NullTracer()
        counter = tracer.counter("x")
        counter.inc(100)
        assert counter.value == 0.0
        gauge = tracer.gauge("y")
        gauge.set(5.0)
        assert gauge.value == 0.0
        # Same instance every time — no per-call allocation.
        assert tracer.counter("other") is counter

    def test_bind_returns_self(self):
        tracer = NullTracer()
        assert tracer.bind(rank=3) is tracer

    def test_tracer_isinstance_nulltracer(self):
        assert isinstance(Tracer(), NullTracer)


class TestTracer:
    def test_span_records(self):
        tracer = Tracer()
        tracer.span("compress.planned", "main", 2, 1.0, 2.0, rank=0)
        (span,) = tracer.recorder.spans
        assert span.name == "compress.planned"
        assert span.machine == "main"
        assert span.job == 2
        assert (span.t0, span.t1) == (1.0, 2.0)
        assert span.attrs == {"rank": 0}

    def test_bind_stamps_attrs_on_everything(self):
        tracer = Tracer()
        bound = tracer.bind(rank=1).bind(iteration=7)
        bound.span("compute", "main", None, 0.0, 1.0)
        bound.event("fs.write", nbytes=10)
        span, = bound.recorder.spans
        event, = bound.recorder.events
        assert span.attrs == {"rank": 1, "iteration": 7}
        assert event.attrs == {"rank": 1, "iteration": 7, "nbytes": 10}

    def test_bind_shares_recorder_and_call_attrs_win(self):
        tracer = Tracer()
        bound = tracer.bind(rank=1)
        assert bound.recorder is tracer.recorder
        bound.span("a", rank=9)
        assert tracer.recorder.spans[0].attrs == {"rank": 9}

    def test_metrics_shared_across_bound_tracers(self):
        tracer = Tracer()
        tracer.bind(rank=0).counter("n").inc()
        tracer.bind(rank=1).counter("n").inc()
        assert tracer.recorder.counters["n"] == 2.0

    def test_timed_measures_wall_clock(self):
        tracer = Tracer()
        with tracer.timed("codec.quantize", nbytes=8):
            pass
        (span,) = tracer.recorder.spans
        assert span.t1 >= span.t0
        assert span.attrs == {"nbytes": 8}

    def test_timed_emits_even_on_raise(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.timed("failing"):
                raise RuntimeError("boom")
        assert [s.name for s in tracer.recorder.spans] == ["failing"]


class TestMetrics:
    def test_counter_accumulates(self):
        counter = Counter("bytes")
        counter.inc()
        counter.inc(4.0)
        assert counter.value == 5.0

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError, match="only increase"):
            Counter("x").inc(-1)

    def test_gauge_sets_level(self):
        gauge = Gauge("overhead")
        gauge.set(0.5)
        gauge.set(0.25)
        assert gauge.value == 0.25
