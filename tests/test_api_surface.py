"""Meta tests: the public API surface is consistent and importable."""

import importlib
import pkgutil

import pytest

import repro

_PACKAGES = [
    "repro",
    "repro.core",
    "repro.compression",
    "repro.simulator",
    "repro.io",
    "repro.apps",
    "repro.framework",
    "repro.parallel",
    "repro.telemetry",
    "repro.resilience",
    "repro.bench",
]


class TestApiSurface:
    @pytest.mark.parametrize("package", _PACKAGES)
    def test_all_names_resolve(self, package):
        module = importlib.import_module(package)
        for name in module.__all__:
            assert hasattr(module, name), f"{package}.{name} missing"

    @pytest.mark.parametrize("package", _PACKAGES)
    def test_no_duplicate_exports(self, package):
        module = importlib.import_module(package)
        assert len(module.__all__) == len(set(module.__all__))

    def test_every_submodule_imports(self):
        failures = []
        for info in pkgutil.walk_packages(
            repro.__path__, prefix="repro."
        ):
            try:
                importlib.import_module(info.name)
            except Exception as exc:  # pragma: no cover
                failures.append((info.name, exc))
        assert not failures

    def test_every_public_item_documented(self):
        undocumented = []
        for package in _PACKAGES:
            module = importlib.import_module(package)
            for name in module.__all__:
                item = getattr(module, name)
                if callable(item) or isinstance(item, type):
                    if not (item.__doc__ or "").strip():
                        undocumented.append(f"{package}.{name}")
        assert not undocumented, undocumented

    def test_version_string(self):
        assert repro.__version__.count(".") == 2

    def test_cli_importable_without_side_effects(self):
        from repro.cli import build_parser

        parser = build_parser()
        assert parser.prog == "repro"
