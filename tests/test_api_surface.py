"""Meta tests: the public API surface is consistent and importable."""

import importlib
import pkgutil

import pytest

import repro

_PACKAGES = [
    "repro",
    "repro.core",
    "repro.compression",
    "repro.simulator",
    "repro.io",
    "repro.apps",
    "repro.framework",
    "repro.parallel",
    "repro.telemetry",
    "repro.resilience",
    "repro.bench",
    "repro.engines",
    "repro.durability",
    "repro.service",
]


class TestApiSurface:
    @pytest.mark.parametrize("package", _PACKAGES)
    def test_all_names_resolve(self, package):
        module = importlib.import_module(package)
        for name in module.__all__:
            assert hasattr(module, name), f"{package}.{name} missing"

    @pytest.mark.parametrize("package", _PACKAGES)
    def test_no_duplicate_exports(self, package):
        module = importlib.import_module(package)
        assert len(module.__all__) == len(set(module.__all__))

    def test_every_submodule_imports(self):
        failures = []
        for info in pkgutil.walk_packages(
            repro.__path__, prefix="repro."
        ):
            try:
                importlib.import_module(info.name)
            except Exception as exc:  # pragma: no cover
                failures.append((info.name, exc))
        assert not failures

    def test_every_public_item_documented(self):
        undocumented = []
        for package in _PACKAGES:
            module = importlib.import_module(package)
            for name in module.__all__:
                item = getattr(module, name)
                if callable(item) or isinstance(item, type):
                    if not (item.__doc__ or "").strip():
                        undocumented.append(f"{package}.{name}")
        assert not undocumented, undocumented

    def test_version_string(self):
        assert repro.__version__.count(".") == 2

    def test_solve_result_surface(self):
        """SolveResult carries the engine name, wall/modelled timings,
        and a telemetry handle (PR 6 API)."""
        import dataclasses
        import inspect

        from repro.core import SolveResult, solve

        names = {f.name for f in dataclasses.fields(SolveResult)}
        assert {
            "schedule",
            "makespan",
            "algorithm",
            "wall_time",
            "status",
            "detail",
            "engine",
            "telemetry",
        } <= names
        assert isinstance(SolveResult.modelled_time, property)
        assert "engine" in inspect.signature(solve).parameters

    def test_engine_protocol_surface(self):
        """Every registered engine implements the four-phase protocol."""
        from repro.engines import ExecutionEngine, get_engine, list_engines

        assert {"sim", "process"} <= set(list_engines())
        for name in list_engines():
            cls = get_engine(name)
            assert issubclass(cls, ExecutionEngine)
            assert cls.name == name
            for phase in (
                "prepare",
                "run_iteration",
                "finish",
                "finalize",
                "report",
            ):
                assert callable(getattr(cls, phase)), (name, phase)

    def test_cli_importable_without_side_effects(self):
        from repro.cli import build_parser

        parser = build_parser()
        assert parser.prog == "repro"
