"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_schedule_defaults(self):
        args = build_parser().parse_args(["schedule"])
        assert args.instance == "figure1"
        assert not args.ilp

    def test_campaign_options(self):
        args = build_parser().parse_args(
            ["campaign", "--app", "warpx", "--nodes", "2", "--solution", "ours"]
        )
        assert args.app == "warpx"
        assert args.nodes == 2


class TestCommands:
    def test_experiments_lists_all(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        for experiment in (
            "Table 1",
            "Figure 3",
            "Figure 9",
            "Figure 11",
            "Artifact B.5",
        ):
            assert experiment in out

    def test_schedule_figure1(self, capsys):
        assert main(["schedule"]) == 0
        out = capsys.readouterr().out
        assert "ExtJohnson+BF" in out
        assert "12.000" in out  # the Figure 1d optimum
        assert "lower bound" in out

    def test_schedule_random_with_ilp(self, capsys):
        assert main(
            ["schedule", "--instance", "random", "--jobs", "3", "--ilp"]
        ) == 0
        out = capsys.readouterr().out
        assert "ILP" in out

    def test_compress_sz(self, capsys):
        assert main(["compress", "--codec", "sz", "--size", "16"]) == 0
        out = capsys.readouterr().out
        assert "SZ-style" in out
        assert "compression ratio" in out

    def test_compress_zfp(self, capsys):
        assert (
            main(["compress", "--codec", "zfp", "--size", "16", "--rate", "12"])
            == 0
        )
        out = capsys.readouterr().out
        assert "fixed rate 12" in out

    def test_campaign_single_solution(self, capsys):
        assert (
            main(
                [
                    "campaign",
                    "--nodes",
                    "1",
                    "--ppn",
                    "2",
                    "--iterations",
                    "3",
                    "--solution",
                    "ours",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "ours" in out
        assert "%" in out

    def test_campaign_all_solutions_ordering(self, capsys):
        assert (
            main(
                [
                    "campaign",
                    "--nodes",
                    "1",
                    "--ppn",
                    "2",
                    "--iterations",
                    "3",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "baseline" in out and "previous" in out and "ours" in out


class TestSnapshotCommand:
    def test_snapshot_shared(self, tmp_path, capsys):
        out = tmp_path / "snap.rpio"
        assert main(["snapshot", str(out), "--size", "16"]) == 0
        text = capsys.readouterr().out
        assert "snapshot verified" in text
        assert out.exists()

    def test_snapshot_subfiled(self, tmp_path, capsys):
        out = tmp_path / "snapdir"
        assert (
            main(
                [
                    "snapshot",
                    str(out),
                    "--layout",
                    "subfiled",
                    "--size",
                    "12",
                    "--fields",
                    "2",
                ]
            )
            == 0
        )
        assert (out / "index.json").exists()

    def test_snapshot_hacc(self, tmp_path, capsys):
        out = tmp_path / "hacc.rpio"
        assert (
            main(
                ["snapshot", str(out), "--app", "hacc", "--size", "8"]
            )
            == 0
        )
        assert "verified" in capsys.readouterr().out
