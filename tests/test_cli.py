"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_schedule_defaults(self):
        args = build_parser().parse_args(["schedule"])
        assert args.instance == "figure1"
        assert not args.ilp

    def test_campaign_options(self):
        args = build_parser().parse_args(
            ["campaign", "--app", "warpx", "--nodes", "2", "--solution", "ours"]
        )
        assert args.app == "warpx"
        assert args.nodes == 2

    def test_campaign_faults_option(self):
        args = build_parser().parse_args(
            ["campaign", "--faults", "spec.yaml", "--seed", "9"]
        )
        assert args.faults == "spec.yaml"
        assert args.seed == 9
        assert build_parser().parse_args(["campaign"]).faults is None


class TestCommands:
    def test_experiments_lists_all(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        for experiment in (
            "Table 1",
            "Figure 3",
            "Figure 9",
            "Figure 11",
            "Artifact B.5",
        ):
            assert experiment in out

    def test_schedule_figure1(self, capsys):
        assert main(["schedule"]) == 0
        out = capsys.readouterr().out
        assert "ExtJohnson+BF" in out
        assert "12.000" in out  # the Figure 1d optimum
        assert "lower bound" in out

    def test_schedule_random_with_ilp(self, capsys):
        assert main(
            ["schedule", "--instance", "random", "--jobs", "3", "--ilp"]
        ) == 0
        out = capsys.readouterr().out
        assert "ILP" in out

    def test_compress_sz(self, capsys):
        assert main(["compress", "--codec", "sz", "--size", "16"]) == 0
        out = capsys.readouterr().out
        assert "SZ-style" in out
        assert "compression ratio" in out

    def test_compress_zfp(self, capsys):
        assert (
            main(["compress", "--codec", "zfp", "--size", "16", "--rate", "12"])
            == 0
        )
        out = capsys.readouterr().out
        assert "fixed rate 12" in out

    def test_campaign_single_solution(self, capsys):
        assert (
            main(
                [
                    "campaign",
                    "--nodes",
                    "1",
                    "--ppn",
                    "2",
                    "--iterations",
                    "3",
                    "--solution",
                    "ours",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "ours" in out
        assert "%" in out

    def test_campaign_all_solutions_ordering(self, capsys):
        assert (
            main(
                [
                    "campaign",
                    "--nodes",
                    "1",
                    "--ppn",
                    "2",
                    "--iterations",
                    "3",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "baseline" in out and "previous" in out and "ours" in out


class TestFaultCampaignCommand:
    _ARGS = [
        "campaign",
        "--nodes", "1",
        "--ppn", "2",
        "--iterations", "3",
        "--solution", "ours",
        "--seed", "7",
    ]

    @pytest.fixture
    def spec_path(self, tmp_path):
        path = tmp_path / "spec.yaml"
        path.write_text(
            "write_error: {probability: 0.4}\n"
            "stall: {probability: 0.3, mean_duration_s: 0.3}\n"
            "straggler: {ranks: [0], io_factor: 2.0}\n"
        )
        return str(path)

    def test_prints_resilience_report(self, spec_path, capsys):
        assert main([*self._ARGS, "--faults", spec_path]) == 0
        out = capsys.readouterr().out
        assert "resilience [ours]" in out
        assert "faults injected:" in out
        assert "write retries:" in out

    def test_same_seed_same_report(self, spec_path, capsys):
        assert main([*self._ARGS, "--faults", spec_path]) == 0
        first = capsys.readouterr().out
        assert main([*self._ARGS, "--faults", spec_path]) == 0
        assert capsys.readouterr().out == first

    def test_no_faults_no_report(self, capsys):
        assert main(self._ARGS) == 0
        assert "resilience" not in capsys.readouterr().out

    def test_bad_spec_exits_2_naming_field(self, tmp_path, capsys):
        path = tmp_path / "bad.yaml"
        path.write_text("stall: {probability: 2.0}\n")
        assert main([*self._ARGS, "--faults", str(path)]) == 2
        assert "stall.probability" in capsys.readouterr().err

    def test_missing_spec_exits_2(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.yaml")
        assert main([*self._ARGS, "--faults", missing]) == 2
        assert "error:" in capsys.readouterr().err

    def test_trace_out_records_fault_events(self, spec_path, tmp_path,
                                            capsys):
        from repro.telemetry import read_jsonl

        trace = tmp_path / "trace.jsonl"
        assert (
            main([*self._ARGS, "--faults", spec_path,
                  "--trace-out", str(trace)])
            == 0
        )
        counters = read_jsonl(str(trace)).counters
        assert counters.get("fault.injected", 0) > 0
        assert counters.get("runtime.fallback", 0) >= 0


class TestSnapshotCommand:
    def test_snapshot_shared(self, tmp_path, capsys):
        out = tmp_path / "snap.rpio"
        assert main(["snapshot", str(out), "--size", "16"]) == 0
        text = capsys.readouterr().out
        assert "snapshot verified" in text
        assert out.exists()

    def test_snapshot_subfiled(self, tmp_path, capsys):
        out = tmp_path / "snapdir"
        assert (
            main(
                [
                    "snapshot",
                    str(out),
                    "--layout",
                    "subfiled",
                    "--size",
                    "12",
                    "--fields",
                    "2",
                ]
            )
            == 0
        )
        assert (out / "index.json").exists()

    def test_snapshot_hacc(self, tmp_path, capsys):
        out = tmp_path / "hacc.rpio"
        assert (
            main(
                ["snapshot", str(out), "--app", "hacc", "--size", "8"]
            )
            == 0
        )
        assert "verified" in capsys.readouterr().out


class TestEnginesCli:
    def test_engines_list(self, capsys):
        assert main(["engines", "list"]) == 0
        out = capsys.readouterr().out
        assert "sim" in out
        assert "process" in out
        assert "SimulatorEngine" in out

    def test_campaign_engine_flag_default(self):
        args = build_parser().parse_args(["campaign"])
        assert args.engine == "sim"
        assert args.data_out is None
        assert args.workers is None

    def test_campaign_rejects_unknown_engine(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign", "--engine", "mpi"])

    def test_campaign_process_engine(self, tmp_path, capsys):
        data_dir = tmp_path / "data"
        assert (
            main(
                [
                    "campaign",
                    "--nodes", "1",
                    "--ppn", "2",
                    "--iterations", "3",
                    "--solution", "ours",
                    "--engine", "process",
                    "--data-out", str(data_dir),
                    "--data-edge", "8",
                    "--workers", "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "data plane [ours/process]" in out
        assert any(data_dir.glob("*.rpio"))

    def test_campaign_engines_agree_on_overheads(self, capsys):
        common = [
            "campaign",
            "--nodes", "1",
            "--ppn", "2",
            "--iterations", "3",
            "--solution", "ours",
        ]
        assert main(common + ["--engine", "sim"]) == 0
        sim_out = capsys.readouterr().out
        assert main(common + ["--engine", "process"]) == 0
        process_out = capsys.readouterr().out
        # The modelled overhead table is engine-independent.
        assert sim_out.splitlines()[:3] == process_out.splitlines()[:3]

    def test_campaign_journal_resume_under_process_engine(
        self, tmp_path, capsys
    ):
        journal = tmp_path / "run.journal"
        args = [
            "campaign",
            "--nodes", "1",
            "--ppn", "2",
            "--iterations", "3",
            "--solution", "ours",
            "--engine", "process",
            "--journal", str(journal),
        ]
        assert main(args) == 0
        capsys.readouterr()
        # Chop the journal after one committed iteration and resume.
        lines = journal.read_bytes().splitlines(keepends=True)
        journal.write_bytes(b"".join(lines[:3]))
        assert main(["campaign", "--resume", str(journal)]) == 0
        out = capsys.readouterr().out
        assert "resuming ours campaign" in out
        assert "1/3 iterations already committed" in out

    def test_schedule_engine_flag(self, capsys):
        assert main(["schedule", "--engine", "process"]) == 0
        assert "ExtJohnson+BF" in capsys.readouterr().out
