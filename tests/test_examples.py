"""Smoke tests: the example scripts stay runnable.

Each example runs as a subprocess exactly as a user would invoke it
(small arguments where supported).  Slow examples (full campaigns, the
ILP playground) are exercised by their own benches instead.
"""

import pathlib
import subprocess
import sys

import pytest

_EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"

_FAST_EXAMPLES = [
    ("real_file_pipeline.py", []),
    ("checkpoint_restart.py", []),
    ("parallel_node_dump.py", ["2"]),
    ("nyx_campaign.py", ["3"]),
]


@pytest.mark.parametrize("script,args", _FAST_EXAMPLES)
def test_example_runs(script, args):
    result = subprocess.run(
        [sys.executable, str(_EXAMPLES_DIR / script), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip()


def test_all_examples_compile():
    """Every example parses and compiles (cheap rot guard for the slow
    ones too)."""
    for script in sorted(_EXAMPLES_DIR.glob("*.py")):
        source = script.read_text()
        compile(source, str(script), "exec")


def test_examples_inventory_matches_readme():
    readme = (
        pathlib.Path(__file__).parent.parent / "README.md"
    ).read_text()
    for script in sorted(_EXAMPLES_DIR.glob("*.py")):
        assert script.name in readme, f"{script.name} missing from README"
