"""Cross-module integration tests: the real data path end to end.

These mirror ``examples/real_file_pipeline.py`` at test scale: generate
application data, compress it block by block with a shared Huffman tree,
reserve offsets from the ratio model, write through the async background
thread into a shared container (with overflow), read everything back and
verify the error bounds.
"""

import numpy as np
import pytest

from repro.apps import NyxModel, WarpXModel
from repro.compression import (
    CompressedBlock,
    CompressedDataBuffer,
    RatioModel,
    SharedTreeManager,
    SZCompressor,
    max_abs_error,
    plan_blocks,
    reassemble_field,
    slice_field,
)
from repro.io import AsyncWriter, SharedFileReader, SharedFileWriter

_BLOCK_BYTES = 16 * 1024
_SHAPE = (16, 16, 16)


@pytest.fixture
def nyx():
    return NyxModel(seed=31, partition_shape=_SHAPE)


def _dump(app, fields, iteration, path, shared, compressor, ratio_model):
    """Compress + write one iteration's fields; returns overflow count."""
    overflow = 0
    with SharedFileWriter(path) as writer:
        with AsyncWriter(writer) as background:
            jobs = []
            for field_name in fields:
                data = app.generate_field(field_name, 0, iteration)
                bound = app.field(field_name).error_bound
                for spec in plan_blocks(
                    field_name, data.shape, data.itemsize, _BLOCK_BYTES
                ):
                    block_data = np.ascontiguousarray(
                        slice_field(data, spec)
                    )
                    estimate = ratio_model.predict(
                        block_data, bound, shared_codebook=shared
                    )
                    name = f"{field_name}/{spec.block_index}"
                    writer.reserve(name, estimate.compressed_nbytes)
                    payload = compressor.compress(
                        block_data, bound, shared_codebook=shared
                    ).to_bytes()
                    jobs.append(background.submit(name, payload))
            background.drain()
            overflow = sum(
                1 for j in jobs if j.fit_reservation is False
            )
    return overflow


def _verify(app, fields, iteration, path, shared, compressor):
    with SharedFileReader(path) as reader:
        for field_name in fields:
            original = app.generate_field(field_name, 0, iteration)
            bound = app.field(field_name).error_bound
            blocks = []
            for spec in plan_blocks(
                field_name,
                original.shape,
                original.itemsize,
                _BLOCK_BYTES,
            ):
                block = CompressedBlock.from_bytes(
                    reader.read(f"{field_name}/{spec.block_index}")
                )
                recon = compressor.decompress(
                    block,
                    shared_codebook=shared
                    if block.used_shared_tree
                    else None,
                )
                blocks.append((spec, recon))
            restored = reassemble_field(blocks)
            assert max_abs_error(original, restored) <= bound * (1 + 1e-9)


class TestRealPipeline:
    def test_multi_iteration_dump_with_shared_tree(self, nyx, tmp_path):
        fields = ("temperature", "velocity_x")
        compressor = SZCompressor()
        ratio_model = RatioModel(compressor, sample_limit=4096)
        tree = SharedTreeManager(
            num_symbols=2 * compressor.radius + 1,
            sentinel=compressor.sentinel,
        )
        for iteration in range(3):
            shared = tree.codebook
            path = tmp_path / f"snap_{iteration}.rpio"
            _dump(
                nyx, fields, iteration, path, shared, compressor,
                ratio_model,
            )
            _verify(nyx, fields, iteration, path, shared, compressor)
            for field_name in fields:
                data = nyx.generate_field(field_name, 0, iteration)
                tree.observe(
                    compressor.histogram(
                        data, nyx.field(field_name).error_bound
                    )
                )
            tree.end_iteration()
        assert tree.codebook is not None

    def test_warpx_extreme_ratio_pipeline(self, tmp_path):
        app = WarpXModel(seed=31, partition_shape=(8, 8, 64))
        compressor = SZCompressor()
        ratio_model = RatioModel(compressor, sample_limit=4096)
        path = tmp_path / "warpx.rpio"
        _dump(
            app, ("Ex", "rho"), 3, path, None, compressor, ratio_model
        )
        _verify(app, ("Ex", "rho"), 3, path, None, compressor)

    def test_buffer_consolidation_in_pipeline(self, nyx, tmp_path):
        # Push blocks through the compressed data buffer and ensure the
        # emitted write units cover every block exactly once.
        compressor = SZCompressor()
        buffer = CompressedDataBuffer(max_bytes=8 * 1024)
        data = nyx.generate_field("temperature", 0, 0)
        bound = nyx.field("temperature").error_bound
        payloads = {}
        units = []
        for spec in plan_blocks(
            "temperature", data.shape, data.itemsize, _BLOCK_BYTES
        ):
            payload = compressor.compress(
                np.ascontiguousarray(slice_field(data, spec)), bound
            ).to_bytes()
            payloads[spec.block_index] = payload
            units.extend(buffer.append(spec.block_index, len(payload)))
        units.extend(buffer.flush())
        seen = [b for unit in units for b in unit.block_ids]
        assert sorted(seen) == sorted(payloads)

    def test_schedule_feeds_real_execution_order(self, nyx, tmp_path):
        """The planned I/O order from the scheduler can drive real writes."""
        from repro.core import Job, ProblemInstance, ext_johnson_backfill

        compressor = SZCompressor()
        data = nyx.generate_field("baryon_density", 0, 0)
        bound = nyx.field("baryon_density").error_bound
        specs = plan_blocks(
            "rho", data.shape, data.itemsize, _BLOCK_BYTES
        )
        payloads = [
            compressor.compress(
                np.ascontiguousarray(slice_field(data, spec)), bound
            ).to_bytes()
            for spec in specs
        ]
        jobs = tuple(
            Job(i, 0.001, len(p) / 1e6) for i, p in enumerate(payloads)
        )
        instance = ProblemInstance(
            begin=0.0, end=10.0, jobs=jobs
        )
        schedule = ext_johnson_backfill(instance)
        io_order = sorted(
            schedule.io, key=lambda j: schedule.io[j].start
        )
        path = tmp_path / "ordered.rpio"
        with SharedFileWriter(path) as writer:
            for i, payload in enumerate(payloads):
                writer.reserve(f"b{i}", len(payload))
            for i in io_order:
                writer.write(f"b{i}", payloads[i])
        with SharedFileReader(path) as reader:
            blocks = [
                (
                    spec,
                    compressor.decompress(
                        CompressedBlock.from_bytes(
                            reader.read(f"b{spec.block_index}")
                        )
                    ),
                )
                for spec in specs
            ]
        restored = reassemble_field(blocks)
        assert max_abs_error(data, restored) <= bound * (1 + 1e-9)
