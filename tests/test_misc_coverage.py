"""Coverage scraps: small behaviours not exercised elsewhere."""

import pytest

from repro.framework.report import _factor


class TestComparisonFactors:
    def test_zero_ours_infinite_factor(self):
        assert _factor(1.0, 0.0) == float("inf")

    def test_both_zero_is_parity(self):
        assert _factor(0.0, 0.0) == 1.0

    def test_ordinary_ratio(self):
        assert _factor(3.0, 1.5) == 2.0


class TestCliCampaignHacc:
    def test_hacc_campaign_via_cli(self, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "campaign",
                    "--app",
                    "hacc",
                    "--nodes",
                    "1",
                    "--ppn",
                    "2",
                    "--iterations",
                    "3",
                    "--solution",
                    "ours",
                ]
            )
            == 0
        )
        assert "ours" in capsys.readouterr().out


class TestIterationRecord:
    def test_zero_computation_relative_overhead(self):
        from repro.framework import IterationRecord

        record = IterationRecord(
            iteration=0, dumped=True, computation_s=0.0, overall_s=1.0
        )
        assert record.relative_overhead == 0.0
        assert record.overhead_s == 1.0

    def test_overall_below_computation_clamped(self):
        from repro.framework import IterationRecord

        record = IterationRecord(
            iteration=0, dumped=False, computation_s=2.0, overall_s=1.5
        )
        assert record.overhead_s == 0.0


class TestEmptyCampaignResult:
    def test_no_dumps_zero_overhead(self):
        from repro.framework import CampaignResult

        result = CampaignResult(solution="x")
        assert result.mean_relative_overhead == 0.0
        assert result.total_time == 0.0


class TestBufferStats:
    def test_counters(self):
        from repro.compression import CompressedDataBuffer

        buf = CompressedDataBuffer(max_bytes=10)
        buf.append(0, 4)
        buf.append(1, 9)  # flush of [0], pending [1]
        buf.flush()
        assert buf.blocks_seen == 2
        assert buf.units_emitted == 2


class TestDefaultRegistryOrder:
    def test_presentation_order_matches_paper(self):
        from repro.core import list_algorithms

        assert list_algorithms() == [
            "ExtJohnson",
            "ExtJohnson+BF",
            "GenerationListSchedule",
            "GenerationListSchedule+BF",
            "OneListGreedy",
            "TwoListsGreedy",
        ]
